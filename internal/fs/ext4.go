package fs

import (
	"lockdoc/internal/jbd2"
	"lockdoc/internal/kernel"
)

// ext4CreateInode allocates an inode on the journaled filesystem
// (ext4_create → ext4_new_inode): the directory's i_rwsem is held by the
// VFS caller, so the operation-vector stores appear under EO(i_rwsem).
func (sb *SuperBlock) ext4CreateInode(c *kernel.Context, dir *Dentry, mode uint64) *Inode {
	f := sb.FS
	defer f.call(c, "ext4_create")()
	c.Cover(3)
	h := sb.Journal.Start(c, 8)

	var in *Inode
	func() {
		defer f.call(c, "ext4_new_inode")()
		c.Cover(5)
		in = f.allocInode(c, sb, mode)
		// Published after init, under the parent's (EO) rwsem.
		in.set(c, "i_op", 0xe440)
		in.set(c, "i_fop", 0xe441)
		in.set(c, "i_acl", 0)
		in.set(c, "i_default_acl", 0)
		in.set(c, "i_private", 0)
		in.set(c, "i_crypt_info", 0)
	}()

	// Journal the inode bitmap block.
	b := f.GetBlk(c, sb.Bdev, 1+in.Ino%64)
	jh := f.AttachJournalHead(c, sb.Journal, b)
	h.GetWriteAccess(c, jh)
	h.DirtyMetadata(c, jh)
	f.Brelse(c, b)
	f.ext4MarkInodeDirty(c, h, in)
	h.Stop(c)
	f.insertInodeHash(c, in)

	// The Fig. 3 / confirmed-bug path: the convention is to hold the
	// TARGET inode's i_rwsem around inode_set_flags, and most call
	// sites do — but "there is at least one code path which doesn't
	// today", and ext4 occasionally takes it.
	if f.K.Sched.Rand(24) == 0 {
		c.Cover(28)
		f.InodeSetFlags(c, in, 0x10, true)
	} else {
		in.IRwsem.DownWrite(c)
		f.InodeSetFlags(c, in, 0x10, false)
		in.IRwsem.UpWrite(c)
	}
	return in
}

// ext4WriteFile is the journaled write path (ext4_file_write_iter →
// ext4_write_begin/ext4_write_end).
func (sb *SuperBlock) ext4WriteFile(c *kernel.Context, in *Inode, n uint64) {
	f := sb.FS
	defer f.call(c, "ext4_file_write_iter")()
	c.Cover(3)
	in.IRwsem.DownWrite(c)
	h := sb.Journal.Start(c, 4)

	var b *Buffer
	func() {
		defer f.call(c, "ext4_write_begin")()
		c.Cover(4)
		b = f.GetBlk(c, sb.Bdev, in.Ino*8+(in.size/4096)%8)
		jh := f.AttachJournalHead(c, sb.Journal, b)
		h.GetWriteAccess(c, jh)
		func() {
			defer f.call(c, "ext4_ext_map_blocks")()
			c.Cover(6)
			_ = in.get(c, "i_blocks")
			_ = in.get(c, "i_flags")
		}()
	}()

	func() {
		defer f.call(c, "ext4_write_end")()
		c.Cover(4)
		f.LockBuffer(c, b)
		b.set(c, "b_data", b.get(c, "b_data")+n)
		f.UnlockBuffer(c, b)
		// ~1 in 12 dirtying operations takes the lock-free
		// test_set_bit shortcut — the buffer_head violations of Tab. 7.
		f.MarkBufferDirty(c, b, f.K.Sched.Rand(12) == 0)
		h.DirtyMetadata(c, b.JH)
		newSize := in.size + n
		if newSize > f.ISizeRead(c, in) {
			c.Cover(22)
			f.ISizeWrite(c, in, newSize)
			f.ext4UpdateDisksize(c, in, newSize)
		}
	}()
	f.InodeAddBytes(c, in, n)
	f.ext4MarkInodeDirty(c, h, in)
	h.Stop(c)
	f.Brelse(c, b)
	in.IRwsem.UpWrite(c)
	f.GenericUpdateTime(c, in, true)
	c.Cover(31)
}

// ext4UpdateDisksize mirrors ext4_update_i_disksize; the on-disk size
// shadow is kept in i_data.writeback_index here and is written under
// i_rwsem (held by the caller).
func (f *FS) ext4UpdateDisksize(c *kernel.Context, in *Inode, size uint64) {
	defer f.call(c, "ext4_update_disksize")()
	c.Cover(2)
	in.set(c, "i_data.writeback_index", size/4096)
}

// ext4MarkInodeDirty journals the inode's metadata block
// (ext4_mark_inode_dirty): reads inode state, journals the block that
// carries the on-disk inode.
func (f *FS) ext4MarkInodeDirty(c *kernel.Context, h *jbd2.Handle, in *Inode) {
	defer f.call(c, "ext4_mark_inode_dirty")()
	c.Cover(3)
	sb := in.Sb
	b := f.GetBlk(c, sb.Bdev, 512+in.Ino%128)
	jh := f.AttachJournalHead(c, sb.Journal, b)
	h.GetWriteAccess(c, jh)
	_ = in.get(c, "i_state") // lock-free state peek
	_ = in.get(c, "i_version")
	h.DirtyMetadata(c, jh)
	f.MarkBufferDirty(c, b, false)
	f.Brelse(c, b)
	c.Cover(26)
}

// Ext4Setattr is the journaled setattr used by the chmod/chown
// workloads when they run on ext4 with a full handle (ext4_setattr).
func (f *FS) Ext4Setattr(c *kernel.Context, d *Dentry, uid, gid uint64) {
	in := d.Inode
	sb := in.Sb
	if !sb.Behavior.Journaled {
		f.Chown(c, d, uid, gid)
		return
	}
	defer f.call(c, "ext4_setattr")()
	c.Cover(3)
	in.IRwsem.DownWrite(c)
	h := sb.Journal.Start(c, 2)
	func() {
		defer f.call(c, "setattr_copy")()
		c.Cover(8)
		in.set(c, "i_uid", uid)
		in.set(c, "i_gid", gid)
		in.set(c, "i_ctime", f.K.Sched.Now())
		in.set(c, "i_version", in.get(c, "i_version")+1)
	}()
	f.ext4MarkInodeDirty(c, h, in)
	h.Stop(c)
	c.Cover(48)
	in.IRwsem.UpWrite(c)
}

// Ext4AllocBlocks models block allocation during large writes
// (ext4_new_blocks): group accounting lives in the superblock and is
// written under sb_lock in this simulation.
func (f *FS) Ext4AllocBlocks(c *kernel.Context, sb *SuperBlock, n uint64) {
	defer f.call(c, "ext4_new_blocks")()
	c.Cover(3)
	f.SbLock.Lock(c)
	sb.sbSet(c, "s_last_sync", f.K.Sched.Now())
	sb.sbAdd(c, "s_remove_count", 0)
	f.SbLock.Unlock(c)
}

// dirJournal is the shared tail of the ext4 directory operations
// (ext4_mkdir, ext4_rmdir, ext4_rename, ext4_symlink, ext4_link): each
// journals the directory block it modified. The caller holds the
// directory's i_rwsem.
func (sb *SuperBlock) dirJournal(c *kernel.Context, fnName string, dir *Inode, cover uint32) {
	if !sb.Behavior.Journaled {
		return
	}
	f := sb.FS
	defer f.call(c, fnName)()
	c.Cover(3)
	h := sb.Journal.Start(c, 4)
	b := f.GetBlk(c, sb.Bdev, dir.Ino)
	jh := f.AttachJournalHead(c, sb.Journal, b)
	h.GetWriteAccess(c, jh)
	_ = dir.get(c, "i_size")
	h.DirtyMetadata(c, jh)
	f.MarkBufferDirty(c, b, false)
	f.Brelse(c, b)
	c.Cover(cover)
	h.Stop(c)
}

// ext4Iget is the filesystem side of iget (ext4_iget): it reads the
// on-disk inode from its metadata block.
func (sb *SuperBlock) ext4Iget(c *kernel.Context, in *Inode) {
	if !sb.Behavior.Journaled {
		return
	}
	f := sb.FS
	defer f.call(c, "ext4_iget")()
	c.Cover(5)
	b := f.GetBlk(c, sb.Bdev, 512+in.Ino%128)
	f.LockBuffer(c, b)
	_ = b.get(c, "b_data")
	f.UnlockBuffer(c, b)
	f.Brelse(c, b)
	c.Cover(32)
	_ = in.get(c, "i_generation")
	_ = in.get(c, "i_flags")
}

// ext4FreeInode releases the on-disk inode at eviction
// (ext4_free_inode).
func (sb *SuperBlock) ext4FreeInode(c *kernel.Context, in *Inode) {
	f := sb.FS
	defer f.call(c, "ext4_free_inode")()
	c.Cover(4)
	h := sb.Journal.Start(c, 2)
	b := f.GetBlk(c, sb.Bdev, 1+in.Ino%64)
	jh := f.AttachJournalHead(c, sb.Journal, b)
	h.GetWriteAccess(c, jh)
	h.DirtyMetadata(c, jh)
	f.Brelse(c, b)
	c.Cover(28)
	h.Stop(c)
}

// JournalFlush is the flusher-thread side of ext4 journaling: it
// journals superblock metadata blocks WITHOUT any inode rwsem held.
// This path matters for rule mining: without it, nearly every jbd2
// operation would run downstream of a VFS call holding some i_rwsem,
// and the derivator would wrongly fold EO(i_rwsem) into every journal
// rule.
func (f *FS) JournalFlush(c *kernel.Context, sb *SuperBlock, blocks int) {
	if sb.Journal == nil {
		return
	}
	defer f.call(c, "ext4_da_writepages")()
	c.Cover(4)
	h := sb.Journal.Start(c, blocks)
	for i := 0; i < blocks; i++ {
		b := f.GetBlk(c, sb.Bdev, uint64(256+i))
		jh := f.AttachJournalHead(c, sb.Journal, b)
		h.GetWriteAccess(c, jh)
		h.DirtyMetadata(c, jh)
		f.MarkBufferDirty(c, b, false)
		f.Brelse(c, b)
	}
	c.Cover(40)
	h.Stop(c)
}

// Ext4JournalCommitWork is the ext4 piece of the paper's Tab. 8
// journal_t violation: a writeback-congestion path updates
// j_committing_transaction while holding the inode's i_rwsem and only
// then the journal state — deviating from the mined write rule.
func (f *FS) Ext4JournalCommitWork(c *kernel.Context, in *Inode) {
	sb := in.Sb
	if !sb.Behavior.Journaled {
		return
	}
	defer f.call(c, "ext4_da_writepages")()
	c.Cover(3)
	in.IRwsem.DownRead(c)
	j := sb.Journal
	// Deviation (fs/ext4/inode.c:4685 in the paper): the committing
	// transaction pointer is refreshed without j_state_lock.
	j.Obj.Store(c, j.Obj.Typ.MemberIndex("j_committing_transaction"),
		j.Obj.Peek(j.Obj.Typ.MemberIndex("j_committing_transaction")))
	in.IRwsem.UpRead(c)
}
