package fs

import (
	"sort"

	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
)

// Dentry flags.
const (
	dcacheLRU    = 1 << 0
	dcacheHashed = 1 << 1
	dcacheOpSet  = 1 << 2
)

// Dentry is a dcache entry. Its traced members are protected by the
// embedded d_lock; tree walks synchronize with renames through the
// global rename_lock seqlock — the conventions of fs/dcache.c.
type Dentry struct {
	FS    *FS
	Sb    *SuperBlock
	Obj   *kernel.Object
	DLock *locks.SpinLock

	Name   string
	Parent *Dentry
	Inode  *Inode

	children map[string]*Dentry
	refcount int
	hashed   bool
	onLRU    bool
}

func (d *Dentry) set(c *kernel.Context, m string, v uint64) {
	d.Obj.Store(c, d.Obj.Typ.MemberIndex(m), v)
}
func (d *Dentry) get(c *kernel.Context, m string) uint64 {
	return d.Obj.Load(c, d.Obj.Typ.MemberIndex(m))
}

func nameHash(s string) uint64 {
	var h uint64 = 5381
	for i := 0; i < len(s); i++ {
		h = h*33 + uint64(s[i])
	}
	return h
}

// dAllocCommon builds a dentry object (__d_alloc: black-listed
// initialization).
func (f *FS) dAllocCommon(c *kernel.Context, sb *SuperBlock, name string) *Dentry {
	defer f.call(c, "__d_alloc")()
	c.Cover(4)
	d := &Dentry{FS: f, Sb: sb, Name: name, children: make(map[string]*Dentry), refcount: 1}
	d.Obj = f.K.Alloc(c, f.T.Dentry, "")
	d.DLock = f.D.SpinIn(d.Obj, "d_lock")
	d.set(c, "d_name.hash_len", nameHash(name)<<8|uint64(len(name)))
	d.set(c, "d_name.name", nameHash(name))
	d.set(c, "d_iname", nameHash(name))
	d.set(c, "d_sb", sb.Obj.Addr)
	d.set(c, "d_flags", 0)
	d.set(c, "d_count", 1)
	d.set(c, "d_seq", 0)
	d.set(c, "d_inode", 0)
	d.set(c, "d_parent", 0)
	return d
}

// dAllocRoot creates the root dentry of a superblock.
func (f *FS) dAllocRoot(c *kernel.Context, sb *SuperBlock, rootInode *Inode) *Dentry {
	d := f.dAllocCommon(c, sb, "/")
	d.Parent = d
	f.dInstantiate(c, d, rootInode)
	return d
}

// DAlloc creates a child dentry under parent (d_alloc): linking into
// d_subdirs happens under the parent's d_lock. The child's own fields
// are written under the parent's lock only — the fresh dentry is not
// yet reachable, so the real d_alloc skips the child's d_lock, which is
// why d_parent and d_child do not validate as d_lock-protected.
func (f *FS) DAlloc(c *kernel.Context, parent *Dentry, name string) *Dentry {
	d := f.dAllocCommon(c, parent.Sb, name)
	defer f.call(c, "d_alloc")()
	c.Cover(3)
	parent.DLock.Lock(c)
	d.set(c, "d_parent", parent.Obj.Addr)
	d.set(c, "d_child", 1)
	d.Parent = parent
	parent.set(c, "d_subdirs", uint64(len(parent.children)+1))
	parent.children[name] = d
	parent.refcount++
	parent.DLock.Unlock(c)
	return d
}

// DInstantiate attaches an inode to a dentry (d_instantiate): d_inode
// and the alias list change under d_lock plus the inode's i_lock in
// the real kernel; here d_lock covers both writes and the i_lock is
// taken for the alias side.
func (f *FS) dInstantiate(c *kernel.Context, d *Dentry, in *Inode) {
	defer f.call(c, "d_instantiate")()
	c.Cover(3)
	d.DLock.Lock(c)
	in.ILock.Lock(c)
	d.set(c, "d_inode", in.Obj.Addr)
	d.set(c, "d_alias", in.Obj.Addr)
	d.set(c, "d_flags", d.get(c, "d_flags")|dcacheHashed)
	in.set(c, "i_dentry", d.Obj.Addr)
	in.ILock.Unlock(c)
	d.DLock.Unlock(c)
	d.Inode = in
	d.hashed = true
}

// DGet takes a reference (dget). Most acquisitions go through the
// lockref cmpxchg fast path, which updates d_count WITHOUT d_lock —
// the documented "d_lock protects d_count" rule is therefore only
// mostly true, one of dentry's many ambivalent rules in Tab. 4.
func (f *FS) DGet(c *kernel.Context, d *Dentry) *Dentry {
	defer f.call(c, "dget")()
	c.Cover(2)
	if f.K.Sched.Rand(4) != 0 {
		// lockref_get fast path.
		c.Cover(5)
		d.set(c, "d_count", d.get(c, "d_count")+1)
	} else {
		c.Cover(8)
		d.DLock.Lock(c)
		d.set(c, "d_count", d.get(c, "d_count")+1)
		d.DLock.Unlock(c)
	}
	d.refcount++
	return d
}

// DPut drops a reference (dput); the last reference parks the dentry on
// the superblock LRU.
func (f *FS) DPut(c *kernel.Context, d *Dentry) {
	defer f.call(c, "dput")()
	c.Cover(3)
	// Lock-free fast-path peek (dput's lockref cmpxchg path) — one of
	// the reasons most dentry read rules come out ambivalent in Tab. 4.
	_ = d.get(c, "d_flags")
	_ = d.get(c, "d_lru")
	d.DLock.Lock(c)
	cnt := d.get(c, "d_count") - 1
	d.set(c, "d_count", cnt)
	d.refcount--
	c.Cover(25)
	if cnt == 0 && d.hashed && !d.onLRU {
		c.Cover(30)
		d.DLock.Unlock(c)
		f.dentryLruAdd(c, d)
		return
	}
	d.DLock.Unlock(c)
}

// dentryLruAdd parks a dentry on the sb LRU (dentry_lru_add): the LRU
// fields change under d_lock, the sb counter under... nothing here —
// dentry LRU accounting reads/writes of s_dentry_lru_nr race benignly
// in this simulation, one of the ambivalent dentry behaviors.
func (f *FS) dentryLruAdd(c *kernel.Context, d *Dentry) {
	defer f.call(c, "dentry_lru_add")()
	d.DLock.Lock(c)
	c.Cover(2)
	d.set(c, "d_lru", 1)
	d.set(c, "d_flags", d.get(c, "d_flags")|dcacheLRU)
	d.DLock.Unlock(c)
	d.Sb.sbAdd(c, "s_dentry_lru_nr", 1)
	d.Sb.sbSet(c, "s_dentry_lru", d.Obj.Addr)
	d.onLRU = true
}

func (f *FS) dentryLruDel(c *kernel.Context, d *Dentry) {
	defer f.call(c, "dentry_lru_del")()
	if !d.onLRU {
		return
	}
	d.DLock.Lock(c)
	c.Cover(2)
	d.set(c, "d_lru", 0)
	d.set(c, "d_flags", d.get(c, "d_flags")&^dcacheLRU)
	d.DLock.Unlock(c)
	d.Sb.sbAdd(c, "s_dentry_lru_nr", ^uint64(0))
	d.onLRU = false
}

// DLookup finds a child by name. Most lookups try the RCU-walk fast
// path first (__d_lookup_rcu): candidate fields are read under nothing
// but the RCU read lock and validated through d_seq. When RCU-walk
// bails (concurrent rename, cold dentry), the slow ref-walk runs under
// the rename_lock sequence (d_lookup → __d_lookup) and takes the
// candidate's d_lock for the final check. The lock-free RCU reads are
// the main source of dentry's high ambivalent share in Tab. 4.
func (f *FS) DLookup(c *kernel.Context, parent *Dentry, name string) *Dentry {
	defer f.call(c, "d_lookup")()
	c.Cover(2)
	if f.K.Sched.Rand(5) != 0 {
		if d, ok := f.dLookupRCU(c, parent, name); ok {
			return d
		}
	}
	for {
		cookie := f.RenameLock.ReadBegin(c)
		d := f.dLookupLocked(c, parent, name)
		if !f.RenameLock.ReadRetry(c, cookie) {
			return d
		}
		c.Cover(13)
	}
}

// dLookupRCU is the RCU-walk fast path (__d_lookup_rcu). It reads the
// candidate's identity fields with no dentry lock held and reports
// !ok when the walk must fall back to ref-walk (simulated with a small
// deterministic failure rate standing in for seqcount retries).
func (f *FS) dLookupRCU(c *kernel.Context, parent *Dentry, name string) (*Dentry, bool) {
	defer f.call(c, "__d_lookup_rcu")()
	c.Cover(3)
	f.D.RCUReadLock(c)
	_ = parent.get(c, "d_subdirs")
	d := parent.children[name]
	if d != nil {
		c.Cover(12)
		_ = d.get(c, "d_seq")
		_ = d.get(c, "d_name.hash_len")
		_ = d.get(c, "d_hash")
		_ = d.get(c, "d_inode")
		_ = d.get(c, "d_flags")
	}
	f.D.RCUReadUnlock(c)
	if d == nil {
		return nil, true // definitive miss
	}
	if f.K.Sched.Rand(10) == 0 {
		c.Cover(22)
		return nil, false // seq retry: fall back to ref-walk
	}
	// Legitimize the reference (lockref under d_lock).
	d.DLock.Lock(c)
	c.Cover(28)
	d.set(c, "d_count", d.get(c, "d_count")+1)
	d.refcount++
	d.DLock.Unlock(c)
	if d.onLRU {
		f.dentryLruDel(c, d)
	}
	return d, true
}

func (f *FS) dLookupLocked(c *kernel.Context, parent *Dentry, name string) *Dentry {
	defer f.call(c, "__d_lookup")()
	c.Cover(3)
	_ = parent.get(c, "d_subdirs")
	d := parent.children[name]
	if d == nil {
		return nil
	}
	c.Cover(12)
	_ = d.get(c, "d_name.hash_len")
	_ = d.get(c, "d_hash")
	_ = d.get(c, "d_parent")
	d.DLock.Lock(c)
	c.Cover(21)
	_ = d.get(c, "d_flags")
	_ = d.get(c, "d_inode")
	_ = d.get(c, "d_lru")           // LRU state check under d_lock
	_ = d.get(c, "d_name.hash_len") // final comparison under d_lock
	d.set(c, "d_count", d.get(c, "d_count")+1)
	d.refcount++
	d.DLock.Unlock(c)
	if d.onLRU {
		f.dentryLruDel(c, d)
	}
	c.Cover(31)
	return d
}

// DDelete unhashes a dentry on unlink (d_delete + __d_drop).
func (f *FS) DDelete(c *kernel.Context, d *Dentry) {
	defer f.call(c, "d_delete")()
	c.Cover(3)
	d.DLock.Lock(c)
	d.Inode.ILock.Lock(c)
	_ = d.get(c, "d_count")  // busy check under d_lock
	_ = d.get(c, "d_parent") // parent sanity check under d_lock
	d.set(c, "d_flags", d.get(c, "d_flags")&^dcacheHashed)
	d.Inode.set(c, "i_dentry", 0)
	d.Inode.ILock.Unlock(c)
	d.DLock.Unlock(c)
	func() {
		defer f.call(c, "__d_drop")()
		d.DLock.Lock(c)
		c.Cover(2)
		d.set(c, "d_hash", 0)
		d.DLock.Unlock(c)
	}()
	d.hashed = false
	if d.Parent != nil && d.Parent != d {
		d.Parent.DLock.Lock(c)
		d.Parent.set(c, "d_subdirs", uint64(len(d.Parent.children)-1))
		delete(d.Parent.children, d.Name)
		d.Parent.refcount--
		d.Parent.DLock.Unlock(c)
	}
	c.Cover(22)
}

// DMove renames a dentry (d_move): writers take the rename_lock seqlock
// plus both parents' d_lock and the moved dentry's d_lock.
func (f *FS) DMove(c *kernel.Context, d, newParent *Dentry, newName string) {
	defer f.call(c, "d_move")()
	c.Cover(5)
	f.RenameLock.WriteLock(c)
	oldParent := d.Parent
	first, second := oldParent, newParent
	if first.Obj.Addr > second.Obj.Addr {
		first, second = second, first
	}
	first.DLock.Lock(c)
	if second != first {
		second.DLock.Lock(c)
	}
	d.DLock.Lock(c)
	c.Cover(22)
	delete(oldParent.children, d.Name)
	oldParent.set(c, "d_subdirs", uint64(len(oldParent.children)))
	newParent.children[newName] = d
	newParent.set(c, "d_subdirs", uint64(len(newParent.children)))
	d.set(c, "d_parent", newParent.Obj.Addr)
	d.set(c, "d_name.hash_len", nameHash(newName)<<8|uint64(len(newName)))
	d.set(c, "d_name.name", nameHash(newName))
	d.set(c, "d_seq", d.get(c, "d_seq")+1)
	d.Name = newName
	d.Parent = newParent
	oldParent.refcount--
	newParent.refcount++
	d.DLock.Unlock(c)
	if second != first {
		second.DLock.Unlock(c)
	}
	first.DLock.Unlock(c)
	c.Cover(44)
	f.RenameLock.WriteUnlock(c)
}

// DSetDOp installs dentry operations (d_set_d_op); d_op and d_flags
// update under d_lock.
func (f *FS) DSetDOp(c *kernel.Context, d *Dentry, op uint64) {
	defer f.call(c, "d_set_d_op")()
	d.DLock.Lock(c)
	c.Cover(2)
	d.set(c, "d_op", op)
	d.set(c, "d_flags", d.get(c, "d_flags")|dcacheOpSet)
	d.DLock.Unlock(c)
}

// DcacheReaddir iterates a directory's children (dcache_readdir in
// fs/libfs.c). The real function walks d_subdirs under the parent's
// d_lock; this simulated version reproduces the deviation the paper
// pinpoints in Tab. 8: the walk holds the directory's i_rwsem and the
// RCU read lock, but NOT d_lock.
func (f *FS) DcacheReaddir(c *kernel.Context, dir *Dentry) []string {
	defer f.call(c, "dcache_readdir")()
	c.Cover(4)
	f.D.RCUReadLock(c)
	_ = dir.get(c, "d_subdirs") // the violating read (fs/libfs.c:104)
	names := sortedNames(dir.children)
	for _, name := range names {
		c.Cover(14)
		_ = dir.children[name].get(c, "d_child")
	}
	f.D.RCUReadUnlock(c)
	return names
}

// shrinkDcacheSb drops every unused dentry of a superblock
// (shrink_dcache_sb).
func (f *FS) shrinkDcacheSb(c *kernel.Context, sb *SuperBlock) {
	defer f.call(c, "shrink_dcache_sb")()
	c.Cover(3)
	if sb.Root != nil {
		f.pruneChildren(c, sb.Root)
	}
}

// sortedNames iterates a children map deterministically: the simulated
// kernel must not depend on Go's randomized map order, or traces would
// differ across runs of the same seed.
func sortedNames(m map[string]*Dentry) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (f *FS) pruneChildren(c *kernel.Context, d *Dentry) {
	for _, name := range sortedNames(d.children) {
		child := d.children[name]
		f.pruneChildren(c, child)
		child.DLock.Lock(c)
		child.set(c, "d_hash", 0)
		child.DLock.Unlock(c)
		child.hashed = false
		delete(d.children, name)
		f.dFree(c, child)
	}
}

// dropTree releases the root dentry at unmount.
func (f *FS) dropTree(c *kernel.Context, root *Dentry) {
	f.pruneChildren(c, root)
	f.dFree(c, root)
}

// dFree destroys a dentry (__d_free, black-listed teardown).
func (f *FS) dFree(c *kernel.Context, d *Dentry) {
	defer f.call(c, "__d_free")()
	if d.Obj.Live() {
		f.K.Free(c, d.Obj)
	}
}
