package fs

import (
	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
	"lockdoc/internal/sched"
)

// Pipe wraps pipe_inode_info. Pipe state is protected by the embedded
// mutex (pipe->mutex / pipe_lock); readers and writers block on the
// wait queue when the ring is empty or full.
type Pipe struct {
	FS    *FS
	Obj   *kernel.Object
	Mutex *locks.Mutex
	wait  *sched.WaitQueue

	ring    []uint64
	buffers uint64
	// Native mirrors of the readers/writers counters, consulted in the
	// race-free instant before blocking (no trace events, hence no
	// preemption point, between the check and the block).
	nReaders int
	nWriters int
}

func (p *Pipe) set(c *kernel.Context, m string, v uint64) {
	p.Obj.Store(c, p.Obj.Typ.MemberIndex(m), v)
}
func (p *Pipe) get(c *kernel.Context, m string) uint64 {
	return p.Obj.Load(c, p.Obj.Typ.MemberIndex(m))
}

// allocPipe creates the pipe payload for an inode (alloc_pipe_info,
// black-listed initialization).
func (f *FS) allocPipe(c *kernel.Context, in *Inode) *Pipe {
	defer f.call(c, "alloc_pipe_info")()
	c.Cover(3)
	p := &Pipe{FS: f, wait: sched.NewWaitQueue("pipe-wait"), nReaders: 1, nWriters: 1}
	p.Obj = f.K.Alloc(c, f.T.PipeInodeInfo, "")
	p.Mutex = f.D.MutexIn(p.Obj, "mutex")
	p.buffers = 16
	p.set(c, "buffers", p.buffers)
	p.set(c, "nrbufs", 0)
	p.set(c, "curbuf", 0)
	p.set(c, "readers", 1)
	p.set(c, "writers", 1)
	p.set(c, "files", 2)
	p.set(c, "r_counter", 1)
	p.set(c, "w_counter", 1)
	p.set(c, "user", 1000)
	in.ILock.Lock(c)
	in.set(c, "i_pipe", p.Obj.Addr)
	in.ILock.Unlock(c)
	in.Pipe = p
	return p
}

func (f *FS) freePipe(c *kernel.Context, p *Pipe) {
	defer f.call(c, "free_pipe_info")()
	c.Cover(2)
	f.K.Free(c, p.Obj)
}

// PipeWrite appends n buffers to the ring (pipe_write): all ring state
// changes under the pipe mutex; full pipes block the writer.
func (f *FS) PipeWrite(c *kernel.Context, p *Pipe, n int) int {
	defer f.call(c, "pipe_write")()
	c.Cover(4)
	written := 0
	p.Mutex.Lock(c)
	for i := 0; i < n; i++ {
		for uint64(len(p.ring)) >= p.buffers {
			c.Cover(18)
			p.set(c, "waiting_writers", p.get(c, "waiting_writers")+1)
			p.Mutex.Unlock(c)
			f.pipeWaitIf(c, p, func() bool {
				return uint64(len(p.ring)) >= p.buffers && p.nReaders > 0
			})
			p.Mutex.Lock(c)
			p.set(c, "waiting_writers", p.get(c, "waiting_writers")-1)
			if p.get(c, "readers") == 0 {
				c.Cover(30)
				p.Mutex.Unlock(c)
				return written // EPIPE
			}
		}
		c.Cover(38)
		p.ring = append(p.ring, uint64(i))
		p.set(c, "nrbufs", uint64(len(p.ring)))
		p.set(c, "bufs", uint64(len(p.ring)))
		written++
		f.K.Sched.WakeAll(p.wait)
	}
	p.Mutex.Unlock(c)
	c.Cover(45)
	return written
}

// PipeRead consumes up to n buffers (pipe_read); empty pipes block the
// reader while writers remain.
func (f *FS) PipeRead(c *kernel.Context, p *Pipe, n int) int {
	defer f.call(c, "pipe_read")()
	c.Cover(4)
	read := 0
	p.Mutex.Lock(c)
	for read < n {
		if len(p.ring) == 0 {
			// Lock-free-looking re-check of writers happens in pipe
			// poll paths; here we stay under the mutex (the documented
			// rule) and bail out when no writer remains.
			if p.get(c, "writers") == 0 {
				c.Cover(16)
				break
			}
			c.Cover(21)
			p.Mutex.Unlock(c)
			f.pipeWaitIf(c, p, func() bool {
				return len(p.ring) == 0 && p.nWriters > 0
			})
			p.Mutex.Lock(c)
			continue
		}
		c.Cover(30)
		p.ring = p.ring[1:]
		p.set(c, "nrbufs", uint64(len(p.ring)))
		p.set(c, "curbuf", (p.get(c, "curbuf")+1)%p.buffers)
		read++
		f.K.Sched.WakeAll(p.wait)
	}
	p.Mutex.Unlock(c)
	c.Cover(40)
	return read
}

// pipeWaitIf blocks on the pipe wait queue (pipe_wait) if cond still
// holds at the instant of blocking. cond must touch only native state:
// the final check-and-block pair must not contain a preemption point,
// or the wakeup could be lost.
func (f *FS) pipeWaitIf(c *kernel.Context, p *Pipe, cond func() bool) {
	defer f.call(c, "pipe_wait")()
	c.Cover(2)
	if t := c.Task(); t != nil && cond() {
		t.Block(p.wait)
	}
}

// PipePoll is the select/poll fast path: it peeks at nrbufs and the
// counters WITHOUT the pipe mutex — the handful of pipe_inode_info
// violations of Tab. 7.
func (f *FS) PipePoll(c *kernel.Context, p *Pipe) (readable, writable bool) {
	defer f.call(c, "pipe_fcntl")()
	c.Cover(2)
	nr := p.get(c, "nrbufs")
	_ = p.get(c, "r_counter")
	_ = p.get(c, "w_counter")
	_ = p.get(c, "curbuf")
	_ = p.get(c, "buffers")
	_ = p.get(c, "files")
	_ = p.get(c, "user")
	_ = p.get(c, "fasync_readers")
	_ = p.get(c, "fasync_writers")
	return nr > 0, nr < p.buffers
}

// PipeReleaseEnd drops one end of the pipe (pipe_release): reader and
// writer counts change under the mutex.
func (f *FS) PipeReleaseEnd(c *kernel.Context, p *Pipe, writer bool) {
	defer f.call(c, "pipe_release")()
	p.Mutex.Lock(c)
	c.Cover(3)
	if writer {
		p.nWriters--
		p.set(c, "writers", p.get(c, "writers")-1)
		p.set(c, "w_counter", p.get(c, "w_counter")+1)
	} else {
		p.nReaders--
		p.set(c, "readers", p.get(c, "readers")-1)
		p.set(c, "r_counter", p.get(c, "r_counter")+1)
	}
	p.set(c, "files", p.get(c, "files")-1)
	p.Mutex.Unlock(c)
	f.K.Sched.WakeAll(p.wait)
}

// Cdev wraps a character device.
type Cdev struct {
	FS  *FS
	Obj *kernel.Object
	Dev uint64
}

func (cd *Cdev) set(c *kernel.Context, m string, v uint64) {
	cd.Obj.Store(c, cd.Obj.Typ.MemberIndex(m), v)
}
func (cd *Cdev) get(c *kernel.Context, m string) uint64 {
	return cd.Obj.Load(c, cd.Obj.Typ.MemberIndex(m))
}

// CdevAdd registers a character device (cdev_alloc + cdev_add): the
// device table and the cdev fields are protected by chrdevs_lock.
func (f *FS) CdevAdd(c *kernel.Context, dev uint64) *Cdev {
	cd := &Cdev{FS: f, Dev: dev}
	cd.Obj = f.K.Alloc(c, f.T.Cdev, "")
	func() {
		defer f.call(c, "cdev_alloc")()
		c.Cover(2)
		cd.set(c, "kobj", cd.Obj.Addr)
		cd.set(c, "owner", 0)
	}()
	defer f.call(c, "cdev_add")()
	f.ChrdevsLock.Lock(c)
	c.Cover(3)
	cd.set(c, "dev", dev)
	cd.set(c, "count", 1)
	cd.set(c, "list", 1)
	cd.set(c, "ops", 0xc0de)
	f.cdevs = append(f.cdevs, cd)
	f.ChrdevsLock.Unlock(c)
	return cd
}

// ChrdevOpen binds the cdev to an inode (chrdev_open): i_cdev under the
// inode's i_lock, the cdev fields under chrdevs_lock.
func (f *FS) ChrdevOpen(c *kernel.Context, in *Inode, cd *Cdev) {
	defer f.call(c, "chrdev_open")()
	c.Cover(3)
	f.ChrdevsLock.Lock(c)
	in.ILock.Lock(c)
	_ = cd.get(c, "dev")
	_ = cd.get(c, "ops")
	in.set(c, "i_cdev", cd.Obj.Addr)
	in.set(c, "i_devices", cd.Obj.Addr)
	cd.set(c, "count", cd.get(c, "count")+1)
	in.ILock.Unlock(c)
	f.ChrdevsLock.Unlock(c)
	in.Cdev = cd
}

// CdForget unbinds the inode from its cdev (cd_forget).
func (f *FS) CdForget(c *kernel.Context, in *Inode) {
	defer f.call(c, "cd_forget")()
	if in.Cdev == nil {
		return
	}
	f.ChrdevsLock.Lock(c)
	in.ILock.Lock(c)
	c.Cover(2)
	in.set(c, "i_cdev", 0)
	in.Cdev.set(c, "count", in.Cdev.get(c, "count")-1)
	in.ILock.Unlock(c)
	f.ChrdevsLock.Unlock(c)
	in.Cdev = nil
}

// CdevDel unregisters the device (cdev_del).
func (f *FS) CdevDel(c *kernel.Context, cd *Cdev) {
	defer f.call(c, "cdev_del")()
	f.ChrdevsLock.Lock(c)
	c.Cover(2)
	cd.set(c, "list", 0)
	cd.set(c, "count", 0)
	for i, o := range f.cdevs {
		if o == cd {
			f.cdevs = append(f.cdevs[:i], f.cdevs[i+1:]...)
			break
		}
	}
	f.ChrdevsLock.Unlock(c)
	f.K.Free(c, cd.Obj)
}
