package fs

import (
	"bytes"
	"testing"

	"lockdoc/internal/db"
	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
	"lockdoc/internal/sched"
	"lockdoc/internal/trace"
)

// rig boots a kernel + VFS with the given filesystems mounted, runs body
// inside a task, and returns the imported observation store.
type rig struct {
	K   *kernel.Kernel
	D   *locks.Domain
	F   *FS
	buf bytes.Buffer
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	r := &rig{}
	w, err := trace.NewWriter(&r.buf)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(seed, 0)
	r.K = kernel.New(s, w)
	r.D = locks.NewDomain(r.K)
	s.DeadlockInfo = r.D.DescribeHeld
	r.F = New(r.K, r.D)
	return r
}

func (r *rig) run(t *testing.T, body func(c *kernel.Context)) {
	t.Helper()
	r.K.Go("test", body)
	r.K.Sched.Run()
	if err := r.K.Err(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) importDB(t *testing.T) *db.DB {
	t.Helper()
	if err := r.K.Finish(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.NewReader(bytes.NewReader(r.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Import(tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTypeMemberCounts(t *testing.T) {
	r := newRig(t, 1)
	// Tab. 6 column #M: members per data type; #Bl: filtered members.
	want := map[string]struct{ members, filtered int }{
		"inode":            {65, 5},
		"dentry":           {21, 1},
		"super_block":      {56, 3},
		"buffer_head":      {13, 0},
		"block_device":     {21, 2},
		"cdev":             {6, 0},
		"backing_dev_info": {43, 2},
		"pipe_inode_info":  {16, 1},
		"journal_t":        {58, 6}, // +5 black-listed wait queues = 11
		"transaction_t":    {27, 1},
		"journal_head":     {15, 0},
	}
	for name, wantC := range want {
		ti, ok := r.K.TypeByName(name)
		if !ok {
			t.Errorf("type %s not registered", name)
			continue
		}
		if ti.MemberCount() != wantC.members {
			t.Errorf("%s has %d members, want %d", name, ti.MemberCount(), wantC.members)
		}
		filtered := 0
		for _, m := range ti.Members {
			if m.Atomic || m.IsLock {
				filtered++
			}
		}
		if filtered != wantC.filtered {
			t.Errorf("%s has %d atomic/lock members, want %d", name, filtered, wantC.filtered)
		}
	}
	// journal_t's five wait queues come from the member black list.
	bl := MemberBlacklist()
	if got := len(bl["journal_t"]); got != 5 {
		t.Errorf("journal_t member black list has %d entries, want 5", got)
	}
}

func TestDocumentedRuleCorpusSize(t *testing.T) {
	specs := DocumentedRules()
	if len(specs) != 142 {
		t.Fatalf("corpus has %d rules, want 142 (the paper's count)", len(specs))
	}
	perType := map[string]int{}
	for _, s := range specs {
		perType[s.Type]++
	}
	want := map[string]int{
		"inode": 14, "dentry": 22, "journal_t": 38,
		"transaction_t": 42, "journal_head": 26,
	}
	for ty, n := range want {
		if perType[ty] != n {
			t.Errorf("%s has %d documented rules, want %d", ty, perType[ty], n)
		}
	}
}

func TestMountUnmountNoLeaks(t *testing.T) {
	r := newRig(t, 3)
	r.run(t, func(c *kernel.Context) {
		for _, fstype := range []string{"ext4", "tmpfs", "proc"} {
			b := Behavior{Journaled: fstype == "ext4", Pseudo: fstype == "proc"}
			sb := r.F.Mount(c, fstype, b)
			d := r.F.Create(c, sb.Root, "file", 0o644)
			r.F.Write(c, d, 100)
			r.F.Unlink(c, sb.Root, d)
			r.F.Unmount(c, sb)
		}
		r.F.DropAllBlockDevices(c)
	})
	if live := r.K.LiveAllocations(); live != 0 {
		t.Errorf("%d allocations leaked", live)
	}
}

func TestCreateWriteReadUnlink(t *testing.T) {
	r := newRig(t, 5)
	var size uint64
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		d := r.F.Create(c, sb.Root, "data", 0o644)
		r.F.Write(c, d, 4096)
		r.F.Write(c, d, 100)
		size = r.F.Read(c, d)
		mode, statSize, nlink := r.F.Stat(c, d)
		if mode&SIFreg == 0 {
			t.Errorf("mode %o lacks regular-file bit", mode)
		}
		if statSize != size {
			t.Errorf("stat size %d != read size %d", statSize, size)
		}
		if nlink != 1 {
			t.Errorf("nlink = %d, want 1", nlink)
		}
		r.F.Unlink(c, sb.Root, d)
		r.F.Unmount(c, sb)
	})
	if size != 4196 {
		t.Errorf("file size = %d, want 4196", size)
	}
}

func TestHardLinkKeepsInodeAlive(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		a := r.F.Create(c, sb.Root, "a", 0o644)
		in := a.Inode
		b := r.F.Link(c, a, sb.Root, "b")
		if b.Inode != in {
			t.Error("link does not share the inode")
		}
		if _, _, nlink := r.F.Stat(c, b); nlink != 2 {
			t.Errorf("nlink = %d, want 2", nlink)
		}
		r.F.Unlink(c, sb.Root, a)
		if !in.Obj.Live() {
			t.Error("inode freed while second link exists")
		}
		r.F.Unlink(c, sb.Root, b)
		if in.Obj.Live() {
			t.Error("inode not freed after last unlink")
		}
		r.F.Unmount(c, sb)
	})
}

func TestRenameMovesDentry(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		d1 := r.F.Mkdir(c, sb.Root, "src")
		d2 := r.F.Mkdir(c, sb.Root, "dst")
		fd := r.F.Create(c, d1, "f", 0o644)
		r.F.Rename(c, d1, fd, d2, "g")
		if fd.Parent != d2 || fd.Name != "g" {
			t.Errorf("rename left dentry at %s/%s", fd.Parent.Name, fd.Name)
		}
		if got := r.F.Lookup(c, d2, "g"); got != fd {
			t.Error("lookup after rename failed")
		} else {
			r.F.DPut(c, got)
		}
		if got := r.F.Lookup(c, d1, "f"); got != nil {
			t.Error("old name still resolves")
		}
		r.F.Unlink(c, d2, fd)
		r.F.Rmdir(c, sb.Root, d1)
		r.F.Rmdir(c, sb.Root, d2)
		r.F.Unmount(c, sb)
	})
}

func TestRmdirRefusesNonEmpty(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		dir := r.F.Mkdir(c, sb.Root, "d")
		fd := r.F.Create(c, dir, "f", 0o644)
		if r.F.Rmdir(c, sb.Root, dir) {
			t.Error("rmdir succeeded on non-empty directory")
		}
		r.F.Unlink(c, dir, fd)
		if !r.F.Rmdir(c, sb.Root, dir) {
			t.Error("rmdir failed on empty directory")
		}
		r.F.Unmount(c, sb)
	})
}

func TestSymlinkRoundTrip(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "rootfs", Behavior{})
		ln := r.F.Symlink(c, sb.Root, "ln", "/target/path")
		if got := r.F.Readlink(c, ln); got != "/target/path" {
			t.Errorf("readlink = %q", got)
		}
		if _, size, _ := r.F.Stat(c, ln); size != uint64(len("/target/path")) {
			t.Errorf("symlink size = %d", size)
		}
		r.F.Unlink(c, sb.Root, ln)
		r.F.Unmount(c, sb)
	})
}

func TestIgetLockedCachesInodes(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		in1 := r.F.IgetLocked(c, sb, 777)
		id := in1.Obj.ID
		r.F.Iput(c, in1) // cached on the LRU, stays alive
		if !in1.Obj.Live() {
			t.Fatal("inode evicted despite being cacheable")
		}
		in2 := r.F.IgetLocked(c, sb, 777)
		if in2.Obj.ID != id {
			t.Error("second iget did not hit the cache")
		}
		r.F.Iput(c, in2)
		// Prune the cache: now it must go away.
		if n := r.F.PruneIcache(c, sb, 10); n != 1 {
			t.Errorf("pruned %d inodes, want 1", n)
		}
		r.F.Unmount(c, sb)
	})
}

func TestPruneSkipsPinnedInodes(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		in := r.F.IgetLocked(c, sb, 1)
		r.F.Iput(c, in) // on LRU
		r.F.Iget(c, in) // pin again (refcount 1)
		if n := r.F.PruneIcache(c, sb, 10); n != 0 {
			t.Errorf("pruned %d pinned inodes", n)
		}
		r.F.Iput(c, in)
		r.F.PruneIcache(c, sb, 10)
		r.F.Unmount(c, sb)
	})
}

func TestWritebackCleansDirtyInodes(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		d := r.F.Create(c, sb.Root, "f", 0o644)
		r.F.Write(c, d, 128) // marks dirty
		if !d.Inode.dirty {
			t.Fatal("write did not dirty the inode")
		}
		n := r.F.WritebackSbInodes(c, sb, 100)
		if n != 1 {
			t.Errorf("wrote back %d inodes, want 1", n)
		}
		if d.Inode.dirty {
			t.Error("inode still dirty after writeback")
		}
		r.F.Unlink(c, sb.Root, d)
		r.F.Unmount(c, sb)
	})
}

func TestPipeTransfersData(t *testing.T) {
	r := newRig(t, 9)
	var read int
	r.run(t, func(c *kernel.Context) {
		pipefs := r.F.Mount(c, "pipefs", Behavior{})
		in := r.F.CreatePipe(c, pipefs)
		p := in.Pipe

		r.K.Go("writer", func(c *kernel.Context) {
			r.F.PipeWrite(c, p, 30) // more than the 16-buffer ring
			r.F.PipeReleaseEnd(c, p, true)
		})
		r.K.Go("reader", func(c *kernel.Context) {
			for {
				got := r.F.PipeRead(c, p, 4)
				read += got
				if got == 0 {
					break
				}
			}
			r.F.PipeReleaseEnd(c, p, false)
			r.F.Iput(c, in)
			r.F.Unmount(c, pipefs)
		})
	})
	if read != 30 {
		t.Errorf("read %d items, want 30", read)
	}
}

func TestBufferCacheHitAndJournalHead(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "ext4", Behavior{Journaled: true})
		b1 := r.F.GetBlk(c, sb.Bdev, 42)
		b2 := r.F.GetBlk(c, sb.Bdev, 42)
		if b1 != b2 {
			t.Error("buffer cache miss for same block")
		}
		jh := r.F.AttachJournalHead(c, sb.Journal, b1)
		if jh2 := r.F.AttachJournalHead(c, sb.Journal, b1); jh2 != jh {
			t.Error("second attach created a new journal head")
		}
		r.F.DetachJournalHead(c, sb.Journal, b1)
		r.F.Brelse(c, b1)
		r.F.Brelse(c, b2)
		r.F.Unmount(c, sb)
	})
	if live := r.K.LiveAllocations(); live != 0 {
		t.Errorf("%d allocations leaked", live)
	}
}

func TestBlockAndCharDevices(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "bdev", Behavior{})
		d := r.F.Create(c, sb.Root, "sda", 0o600)
		bd := r.F.Bdget(c, 0x800)
		if again := r.F.Bdget(c, 0x800); again != bd {
			t.Error("bdget allocated a duplicate device")
		}
		r.F.BdAcquire(c, d.Inode, bd)
		if d.Inode.Bdev != bd {
			t.Error("bd_acquire did not bind the device")
		}
		r.F.SetBlocksize(c, bd, 512)
		r.F.BdForget(c, d.Inode)
		r.F.Bdput(c, bd)
		r.F.Bdput(c, bd)

		cd := r.F.CdevAdd(c, 0x0502)
		r.F.ChrdevOpen(c, d.Inode, cd)
		if d.Inode.Cdev != cd {
			t.Error("chrdev_open did not bind the cdev")
		}
		r.F.CdForget(c, d.Inode)
		r.F.CdevDel(c, cd)

		r.F.Unlink(c, sb.Root, d)
		r.F.Unmount(c, sb)
		r.F.DropAllBlockDevices(c)
	})
	if live := r.K.LiveAllocations(); live != 0 {
		t.Errorf("%d allocations leaked", live)
	}
}

// TestIStateWritesAlwaysLocked verifies the ground-truth invariant
// behind Tab. 5's 100% row: every traced write to i_state happens with
// the inode's i_lock held.
func TestIStateWritesAlwaysLocked(t *testing.T) {
	r := newRig(t, 11)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "ext4", Behavior{Journaled: true})
		var files []*Dentry
		for i := 0; i < 5; i++ {
			d := r.F.Create(c, sb.Root, string(rune('a'+i)), 0o644)
			r.F.Write(c, d, 512)
			files = append(files, d)
		}
		r.F.SyncFilesystem(c, sb)
		for _, d := range files {
			r.F.Unlink(c, sb.Root, d)
		}
		r.F.Unmount(c, sb)
	})
	d := r.importDB(t)
	g, ok := d.Group("inode", "ext4", "i_state", true)
	if !ok {
		t.Fatal("no i_state write group")
	}
	key, ok := d.KeyByString("ES(i_lock in inode)")
	if !ok {
		t.Fatal("i_lock key not interned")
	}
	for _, so := range g.Seqs {
		found := false
		for _, k := range so.Seq {
			if k == key {
				found = true
			}
		}
		if !found {
			t.Errorf("i_state written under %q without i_lock", d.SeqString(so.Seq))
		}
	}
}

// TestISizeWritesNeverUnderILock verifies the inverse ground truth for
// Tab. 5's 0% row.
func TestISizeWritesNeverUnderILock(t *testing.T) {
	r := newRig(t, 11)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		fd := r.F.Create(c, sb.Root, "f", 0o644)
		r.F.Write(c, fd, 512)
		r.F.Truncate(c, fd, 100)
		r.F.Unlink(c, sb.Root, fd)
		r.F.Unmount(c, sb)
	})
	d := r.importDB(t)
	g, ok := d.Group("inode", "tmpfs", "i_size", true)
	if !ok {
		t.Fatal("no i_size write group")
	}
	if key, ok := d.KeyByString("ES(i_lock in inode)"); ok {
		for _, so := range g.Seqs {
			for _, k := range so.Seq {
				if k == key {
					t.Errorf("i_size written under i_lock: %s", d.SeqString(so.Seq))
				}
			}
		}
	}
}

// TestRemoveInodeHashNeighborDeviation checks that unhashing an inode
// whose bucket has neighbours produces i_hash writes with the EO i_lock
// only — the injected Sec. 7.4 deviation.
func TestRemoveInodeHashNeighborDeviation(t *testing.T) {
	r := newRig(t, 11)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		// Same bucket: inode numbers congruent modulo the bucket count.
		a := r.F.IgetLocked(c, sb, 10)
		b := r.F.IgetLocked(c, sb, 10+r.F.hashBuckets)
		cIn := r.F.IgetLocked(c, sb, 10+2*r.F.hashBuckets)
		if a.bucket != b.bucket || b.bucket != cIn.bucket {
			t.Fatalf("inodes landed in different buckets: %d %d %d", a.bucket, b.bucket, cIn.bucket)
		}
		// Evict the middle one: both neighbours' i_hash get written
		// without their own i_lock.
		b.nlink = 0
		r.F.Iput(c, b)
		r.F.Iput(c, a)
		r.F.Iput(c, cIn)
		r.F.Unmount(c, sb)
	})
	d := r.importDB(t)
	g, ok := d.Group("inode", "tmpfs", "i_hash", true)
	if !ok {
		t.Fatal("no i_hash write group")
	}
	es, _ := d.KeyByString("ES(i_lock in inode)")
	eo, hasEO := d.KeyByString("EO(i_lock in inode)")
	if !hasEO {
		t.Fatal("no EO i_lock observations — neighbour deviation not triggered")
	}
	var deviant uint64
	for _, so := range g.Seqs {
		hasES := false
		hasEOk := false
		for _, k := range so.Seq {
			if k == es {
				hasES = true
			}
			if k == eo {
				hasEOk = true
			}
		}
		if !hasES && hasEOk {
			deviant += so.Count
		}
	}
	if deviant == 0 {
		t.Error("no i_hash writes under EO(i_lock) only")
	}
}

func TestStatfsIsLockFree(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "tmpfs", Behavior{})
		r.F.Statfs(c, sb)
		r.F.Unmount(c, sb)
	})
	d := r.importDB(t)
	g, ok := d.Group("super_block", "", "s_magic", false)
	if !ok {
		t.Fatal("no s_magic read group")
	}
	for _, so := range g.Seqs {
		if len(so.Seq) != 0 {
			t.Errorf("statfs read ran under %s", d.SeqString(so.Seq))
		}
	}
}

func TestDcacheReaddirViolatesDLock(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "rootfs", Behavior{})
		dir := r.F.Mkdir(c, sb.Root, "d")
		for i := 0; i < 3; i++ {
			r.F.Create(c, dir, string(rune('a'+i)), 0o644)
		}
		names := r.F.Readdir(c, dir)
		if len(names) != 3 {
			t.Errorf("readdir returned %d names, want 3", len(names))
		}
		// Deterministic (sorted) iteration.
		if names[0] != "a" || names[1] != "b" || names[2] != "c" {
			t.Errorf("names = %v", names)
		}
		r.F.Unmount(c, sb)
	})
	d := r.importDB(t)
	g, ok := d.Group("dentry", "", "d_subdirs", false)
	if !ok {
		t.Fatal("no d_subdirs read group")
	}
	// The readdir path must have read d_subdirs under rcu (+ rwsem) but
	// NOT under the dentry's own d_lock.
	dlock, _ := d.KeyByString("ES(d_lock in dentry)")
	lockless := false
	for _, so := range g.Seqs {
		hasDLock := false
		for _, k := range so.Seq {
			if k == dlock {
				hasDLock = true
			}
		}
		if !hasDLock {
			lockless = true
		}
	}
	if !lockless {
		t.Error("dcache_readdir deviation not observed")
	}
}

func TestFuncBlacklistEntriesRegistered(t *testing.T) {
	r := newRig(t, 1)
	for _, name := range FuncBlacklist() {
		if _, ok := r.F.funcs[name]; !ok {
			t.Errorf("black-listed function %q is not part of the corpus", name)
		}
	}
}

func TestUnregisteredFunctionPanics(t *testing.T) {
	r := newRig(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown function")
		}
	}()
	r.F.fn("no_such_function")
}

func TestChownSloppyPathSkipsRwsem(t *testing.T) {
	r := newRig(t, 5)
	r.run(t, func(c *kernel.Context) {
		sb := r.F.Mount(c, "devtmpfs", Behavior{SloppyTimes: true})
		d := r.F.Create(c, sb.Root, "tty0", 0o620)
		r.F.Chown(c, d, 5, 5)
		r.F.Unlink(c, sb.Root, d)
		r.F.Unmount(c, sb)
	})
	d := r.importDB(t)
	g, ok := d.Group("inode", "devtmpfs", "i_uid", true)
	if !ok {
		t.Fatal("no i_uid write group")
	}
	if rw, ok := d.KeyByString("ES(i_rwsem in inode)"); ok {
		for _, so := range g.Seqs {
			for _, k := range so.Seq {
				if k == rw {
					t.Error("sloppy chown still took i_rwsem")
				}
			}
		}
	}
}
