package fs

import (
	"sort"

	"lockdoc/internal/jbd2"
	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
)

// b_state bits.
const (
	bhUptodate = 1 << 0
	bhDirty    = 1 << 1
	bhLocked   = 1 << 2
	bhMapped   = 1 << 3
	bhJBD      = 1 << 4
)

// Buffer is a live buffer_head. Its content fields are protected by the
// buffer bit lock living in the b_state word (lock_buffer /
// bit_spin_lock); the same bit lock protects the attached journal_head,
// which is why journal_head rules surface as EO locks.
type Buffer struct {
	FS        *FS
	Obj       *kernel.Object
	StateLock *locks.SpinLock // the b_state bit lock
	JH        *jbd2.JournalHead
	Block     uint64
	refcount  int
}

func (b *Buffer) set(c *kernel.Context, m string, v uint64) {
	b.Obj.Store(c, b.Obj.Typ.MemberIndex(m), v)
}
func (b *Buffer) get(c *kernel.Context, m string) uint64 {
	return b.Obj.Load(c, b.Obj.Typ.MemberIndex(m))
}

// GetBlk looks a block buffer up, allocating it on a miss (__getblk +
// alloc_buffer_head). The per-device buffer table is a plain map keyed
// by block number; the kernel's page-cache indirection is out of scope.
func (f *FS) GetBlk(c *kernel.Context, bdev *BlockDevice, block uint64) *Buffer {
	defer f.call(c, "__getblk")()
	c.Cover(3)
	if b, ok := bdev.buffers[block]; ok {
		c.Cover(9)
		b.refcount++
		// Lock-free identity checks and refcount mirror — b_count is
		// maintained with atomic ops in the real kernel; these members
		// mine "no lock" rules (part of Tab. 6's #Nl buffer_head rows).
		_ = b.get(c, "b_blocknr")
		_ = b.get(c, "b_size")
		_ = b.get(c, "b_bdev")
		_ = b.get(c, "b_data")
		b.set(c, "b_count", uint64(b.refcount))
		return b
	}
	c.Cover(20)
	b := &Buffer{FS: f, Block: block, refcount: 1}
	b.Obj = f.K.Alloc(c, f.T.BufferHead, "")
	b.StateLock = f.D.SpinAt(b.Obj, "b_state")
	func() {
		defer f.call(c, "alloc_buffer_head")()
		c.Cover(3)
		b.set(c, "b_blocknr", block)
		b.set(c, "b_size", 4096)
		b.set(c, "b_bdev", bdev.Obj.Addr)
		b.set(c, "b_data", b.Obj.Addr<<1)
		b.set(c, "b_state", bhMapped)
		b.set(c, "b_count", 1)
		b.set(c, "b_page", 0)
		b.set(c, "b_this_page", 0)
		b.set(c, "b_private", 0)
		b.set(c, "b_journal_head", 0)
	}()
	bdev.buffers[block] = b
	c.Cover(35)
	return b
}

// Brelse drops a buffer reference (__brelse).
func (f *FS) Brelse(c *kernel.Context, b *Buffer) {
	defer f.call(c, "__brelse")()
	c.Cover(2)
	b.refcount--
	b.set(c, "b_count", uint64(b.refcount))
}

// LockBuffer takes the buffer bit lock (lock_buffer): b_state content
// updates inside the critical section carry the ES(b_state) rule.
func (f *FS) LockBuffer(c *kernel.Context, b *Buffer) {
	defer f.call(c, "lock_buffer")()
	c.Cover(2)
	b.StateLock.Lock(c)
	b.set(c, "b_state", b.get(c, "b_state")|bhLocked)
}

// UnlockBuffer releases the bit lock (unlock_buffer).
func (f *FS) UnlockBuffer(c *kernel.Context, b *Buffer) {
	defer f.call(c, "unlock_buffer")()
	c.Cover(2)
	b.set(c, "b_state", b.get(c, "b_state")&^bhLocked)
	b.StateLock.Unlock(c)
}

// MarkBufferDirty dirties a buffer (mark_buffer_dirty). The common path
// updates b_state under the buffer bit lock. When fast is true the
// simulated code takes the real kernel's test_set_bit shortcut and
// writes b_state with no lock held — these lock-free writes are the
// single largest contributor to the rule violations of Tab. 7
// (buffer_head rows), while the locked majority keeps the ES(b_state)
// rule the winner.
func (f *FS) MarkBufferDirty(c *kernel.Context, b *Buffer, fast bool) {
	defer f.call(c, "mark_buffer_dirty")()
	c.Cover(2)
	if fast {
		c.Cover(10)
		st := b.get(c, "b_state")
		if st&bhDirty == 0 {
			b.set(c, "b_state", st|bhDirty)
		}
		return
	}
	b.StateLock.Lock(c)
	c.Cover(17)
	st := b.get(c, "b_state")
	if st&bhDirty == 0 {
		b.set(c, "b_state", st|bhDirty)
	}
	b.StateLock.Unlock(c)
}

// SyncDirtyBuffer writes one buffer out (sync_dirty_buffer): the write
// path locks the buffer, clears dirty, simulates IO and unlocks.
func (f *FS) SyncDirtyBuffer(c *kernel.Context, b *Buffer) {
	defer f.call(c, "sync_dirty_buffer")()
	c.Cover(3)
	f.LockBuffer(c, b)
	_ = b.get(c, "b_page")
	_ = b.get(c, "b_this_page")
	_ = b.get(c, "b_private")
	b.set(c, "b_state", b.get(c, "b_state")&^bhDirty)
	b.set(c, "b_end_io", 1)
	c.Tick(4) // simulated IO
	b.set(c, "b_end_io", 0)
	c.Cover(25)
	f.UnlockBuffer(c, b)
}

// WaitOnBuffer spins until the buffer is unlocked (__wait_on_buffer):
// the b_state read polls lock-free.
func (f *FS) WaitOnBuffer(c *kernel.Context, b *Buffer) {
	defer f.call(c, "__wait_on_buffer")()
	c.Cover(2)
	for b.get(c, "b_state")&bhLocked != 0 {
		c.Tick(1)
		if t := c.Task(); t != nil {
			t.Yield()
		} else {
			return
		}
	}
}

// AttachJournalHead gives the buffer a journal_head
// (jbd2_journal_add_journal_head glue): the b_journal_head pointer and
// the BH_JBD bit change under the bit lock.
func (f *FS) AttachJournalHead(c *kernel.Context, j *jbd2.Journal, b *Buffer) *jbd2.JournalHead {
	if b.JH != nil {
		return b.JH
	}
	jh := j.AddJournalHead(c, b.StateLock, b.Obj.ID, b.Obj.Addr)
	b.StateLock.Lock(c)
	b.set(c, "b_journal_head", jh.Obj.Addr)
	b.set(c, "b_state", b.get(c, "b_state")|bhJBD)
	b.StateLock.Unlock(c)
	b.JH = jh
	return jh
}

// DetachJournalHead drops the journal_head again.
func (f *FS) DetachJournalHead(c *kernel.Context, j *jbd2.Journal, b *Buffer) {
	if b.JH == nil {
		return
	}
	b.StateLock.Lock(c)
	b.set(c, "b_journal_head", 0)
	b.set(c, "b_state", b.get(c, "b_state")&^bhJBD)
	b.StateLock.Unlock(c)
	j.PutJournalHead(c, b.JH)
	b.JH = nil
}

// FreeBuffer destroys a buffer at device teardown (free_buffer_head —
// black-listed teardown).
func (f *FS) FreeBuffer(c *kernel.Context, bdev *BlockDevice, b *Buffer) {
	defer f.call(c, "free_buffer_head")()
	if b.JH != nil {
		panic("fs: freeing buffer with journal head attached")
	}
	delete(bdev.buffers, b.Block)
	f.K.Free(c, b.Obj)
}

// BlockDevice is a live block_device with its buffer table.
type BlockDevice struct {
	FS      *FS
	Obj     *kernel.Object
	Dev     uint64
	buffers map[uint64]*Buffer
}

func (bd *BlockDevice) set(c *kernel.Context, m string, v uint64) {
	bd.Obj.Store(c, bd.Obj.Typ.MemberIndex(m), v)
}
func (bd *BlockDevice) get(c *kernel.Context, m string) uint64 {
	return bd.Obj.Load(c, bd.Obj.Typ.MemberIndex(m))
}

// Bdget creates or finds a block device by number (bdget): the device
// list and identity fields are protected by the global bdev_lock.
func (f *FS) Bdget(c *kernel.Context, dev uint64) *BlockDevice {
	defer f.call(c, "bdget")()
	c.Cover(3)
	f.BdevLock.Lock(c)
	for _, bd := range f.bdevs {
		_ = bd.get(c, "bd_dev")
		if bd.Dev == dev {
			c.Cover(10)
			_ = bd.get(c, "bd_partno")
			_ = bd.get(c, "bd_contains")
			_ = bd.get(c, "bd_disk")
			bd.set(c, "bd_holders", bd.get(c, "bd_holders")+1)
			f.BdevLock.Unlock(c)
			return bd
		}
	}
	f.BdevLock.Unlock(c)

	c.Cover(20)
	bd := &BlockDevice{FS: f, Dev: dev, buffers: make(map[uint64]*Buffer)}
	bd.Obj = f.K.Alloc(c, f.T.BlockDevice, "")
	f.BdevLock.Lock(c)
	bd.set(c, "bd_dev", dev)
	bd.set(c, "bd_block_size", 4096)
	bd.set(c, "bd_partno", 0)
	bd.set(c, "bd_holders", 1)
	bd.set(c, "bd_list", 1)
	bd.set(c, "bd_invalidated", 0)
	f.bdevs = append(f.bdevs, bd)
	f.BdevLock.Unlock(c)
	return bd
}

// Bdput drops a device reference (bdput).
func (f *FS) Bdput(c *kernel.Context, bd *BlockDevice) {
	defer f.call(c, "bdput")()
	f.BdevLock.Lock(c)
	c.Cover(2)
	bd.set(c, "bd_holders", bd.get(c, "bd_holders")-1)
	f.BdevLock.Unlock(c)
}

// BdAcquire binds a device to an inode (bd_acquire): bd_inode and the
// holder fields change under bdev_lock; the inode's i_bdev is written
// under its i_lock.
func (f *FS) BdAcquire(c *kernel.Context, in *Inode, bd *BlockDevice) {
	defer f.call(c, "bd_acquire")()
	c.Cover(3)
	f.BdevLock.Lock(c)
	in.ILock.Lock(c)
	bd.set(c, "bd_inode", in.Obj.Addr)
	bd.set(c, "bd_holder", in.Obj.Addr)
	in.set(c, "i_bdev", bd.Obj.Addr)
	in.ILock.Unlock(c)
	f.BdevLock.Unlock(c)
	in.Bdev = bd
}

// BdForget detaches the device from its inode (bd_forget). The paper's
// Tab. 7 records a single block_device violation event: this path
// clears bd_inode with only the inode's i_lock, missing bdev_lock.
// Worse, the slow path nests bdev_lock INSIDE i_lock — the inverse of
// bd_acquire's bdev_lock -> i_lock order, a textbook ABBA inversion the
// lockdep analysis (internal/lockdep) flags as a potential deadlock.
func (f *FS) BdForget(c *kernel.Context, in *Inode) {
	defer f.call(c, "bd_forget")()
	c.Cover(2)
	bd := in.Bdev
	if bd == nil {
		return
	}
	in.ILock.Lock(c)
	if f.K.Sched.Rand(4) == 0 {
		// Slow path: also drop the device-table back-pointer — taking
		// bdev_lock while i_lock is held.
		c.Cover(9)
		f.BdevLock.Lock(c)
		bd.set(c, "bd_holder", 0)
		f.BdevLock.Unlock(c)
	}
	bd.set(c, "bd_inode", 0) // deviation: bdev_lock not held here
	in.set(c, "i_bdev", 0)
	in.ILock.Unlock(c)
	in.Bdev = nil
}

// SetBlocksize adjusts the device block size (set_blocksize). The
// pre-check reads the current size lock-free, as the real function does
// before committing.
func (f *FS) SetBlocksize(c *kernel.Context, bd *BlockDevice, size uint64) {
	defer f.call(c, "set_blocksize")()
	c.Cover(2)
	if bd.get(c, "bd_block_size") == size {
		_ = bd.get(c, "bd_queue")
	}
	f.BdevLock.Lock(c)
	c.Cover(9)
	bd.set(c, "bd_block_size", size)
	bd.set(c, "bd_invalidated", 1)
	f.BdevLock.Unlock(c)
}

// sortedBlocks returns the buffer table keys in deterministic order.
func sortedBlocks(m map[uint64]*Buffer) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// DropAllBlockDevices releases every registered block device (shutdown
// path).
func (f *FS) DropAllBlockDevices(c *kernel.Context) {
	for len(f.bdevs) > 0 {
		f.DropBlockDevice(c, f.bdevs[0])
	}
}

// DropBlockDevice tears a device down, freeing its buffers.
func (f *FS) DropBlockDevice(c *kernel.Context, bd *BlockDevice) {
	for _, blk := range sortedBlocks(bd.buffers) {
		f.FreeBuffer(c, bd, bd.buffers[blk])
	}
	f.BdevLock.Lock(c)
	bd.set(c, "bd_list", 0)
	for i, o := range f.bdevs {
		if o == bd {
			f.bdevs = append(f.bdevs[:i], f.bdevs[i+1:]...)
			break
		}
	}
	f.BdevLock.Unlock(c)
	f.K.Free(c, bd.Obj)
}
