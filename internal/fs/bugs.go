package fs

// This file is the inventory of deliberate locking-rule deviations built
// into the simulated kernel. Each mirrors a finding of the paper; the
// mining pipeline is supposed to rediscover every one of them, either as
// an ambivalent/incorrect documented rule (Tab. 4/5) or as a rule
// violation (Tab. 7/8). TestInjectedDeviationsRediscovered keeps this
// inventory honest.

// Deviation describes one injected locking-rule deviation.
type Deviation struct {
	// ID is a short stable handle.
	ID string
	// Type/Member/Write identify the affected observation group. For
	// subclassed types, Subclass narrows it; empty matches any.
	Type     string
	Subclass string
	Member   string
	Write    bool
	// Where names the simulated function containing the deviant access.
	Where string
	// Paper points at the corresponding paper finding.
	Paper string
	// What summarizes the deviation.
	What string
	// Expect states how the deviation must surface in the analysis:
	//   "violation"        — rule-violation finder reports events
	//   "imperfect"        — mined winner has s_r < 1 (or a violation)
	//   "doc-noncorrect"   — the documented rule checks as non-correct;
	//                        ExpectArg holds the documented lock spec
	//   "winner-lacks"     — mined winner does not contain ExpectArg
	//   "unobserved"       — the member yields no observations at all
	Expect    string
	ExpectArg string
}

// InjectedDeviations lists every deliberate deviation.
func InjectedDeviations() []Deviation {
	return []Deviation{
		{
			ID: "i_hash-neighbours", Type: "inode", Member: "i_hash", Write: true,
			Where:  "__remove_inode_hash",
			Paper:  "Sec. 7.4 + Tab. 8 row 1 (confusion 'cleared up by a kernel expert')",
			What:   "unhashing writes the hash-chain neighbours' i_hash holding inode_hash_lock and only the victim's (EO) i_lock",
			Expect: "violation",
		},
		{
			ID: "i_flags-unlocked", Type: "inode", Subclass: "ext4", Member: "i_flags", Write: true,
			Where:  "inode_set_flags",
			Paper:  "Fig. 3 + Sec. 7.5 (the confirmed kernel bug, lkml.org/lkml/2018/12/7/532)",
			What:   "one ext4 code path sets i_flags without holding i_rwsem ('at least one code path which doesn't today')",
			Expect: "imperfect",
		},
		{
			ID: "i_blocks-truncate", Type: "inode", Subclass: "ext4", Member: "i_blocks", Write: true,
			Where:  "inode_set_bytes",
			Paper:  "Tab. 5 (i_blocks w at 93.56%)",
			What:   "the ext4 truncate fast path resets i_blocks without i_lock",
			Expect: "imperfect",
		},
		{
			ID: "i_size-wrong-doc", Type: "inode", Member: "i_size", Write: true,
			Where:  "i_size_write callers",
			Paper:  "Tab. 5 (i_size w documented as i_lock, 0% support)",
			What:   "i_size is documented i_lock-protected but written under i_rwsem + seqcount everywhere",
			Expect: "doc-noncorrect", ExpectArg: "ES(inode.i_lock)",
		},
		{
			ID: "fsstack-copy", Type: "inode", Member: "i_blocks", Write: false,
			Where:  "fsstack_copy_inode_size",
			Paper:  "Sec. 2.4 ('we don't actually know what locking is used at the lower level')",
			What:   "fs/stack.c reads i_size/i_blocks/i_bytes of the lower inode with no locks",
			Expect: "doc-noncorrect", ExpectArg: "ES(inode.i_lock)",
		},
		{
			ID: "d_subdirs-readdir", Type: "dentry", Member: "d_subdirs", Write: false,
			Where:  "dcache_readdir",
			Paper:  "Tab. 8 row 3 (fs/libfs.c:104)",
			What:   "the readdir walk reads d_subdirs under the directory's i_rwsem and RCU, without d_lock",
			Expect: "winner-lacks", ExpectArg: "ES(d_lock in dentry)",
		},
		{
			ID: "d_count-lockref", Type: "dentry", Member: "d_count", Write: true,
			Where:  "dget",
			Paper:  "Tab. 4 (dentry's 63.64% ambivalent share)",
			What:   "lockref-style cmpxchg fast path updates d_count without d_lock",
			Expect: "doc-noncorrect", ExpectArg: "ES(dentry.d_lock)",
		},
		{
			ID: "mark_buffer_dirty-fast", Type: "buffer_head", Member: "b_state", Write: true,
			Where:  "mark_buffer_dirty",
			Paper:  "Tab. 7 (buffer_head dominating the violation counts)",
			What:   "the test_set_bit fast path dirties b_state without the buffer bit lock",
			Expect: "violation",
		},
		{
			ID: "bd_forget-bdev_lock", Type: "block_device", Member: "bd_inode", Write: true,
			Where:  "bd_forget",
			Paper:  "Tab. 7 (the single block_device violation event)",
			What:   "bd_forget clears bd_inode holding only the inode's i_lock, missing bdev_lock",
			Expect: "winner-lacks", ExpectArg: "bdev_lock",
		},
		{
			ID: "j_last_sync_writer", Type: "journal_t", Member: "j_last_sync_writer", Write: true,
			Where:  "write_tag_block",
			Paper:  "Tab. 4 (journal_t's incorrect share)",
			What:   "the commit stats path records the last sync writer outside any lock",
			Expect: "doc-noncorrect", ExpectArg: "ES(journal_t.j_state_lock)",
		},
		{
			ID: "j_commit_sequence-tidgeq", Type: "journal_t", Member: "j_commit_sequence", Write: false,
			Where:  "jbd2_journal_tid_geq",
			Paper:  "Tab. 4 (journal_t's ambivalent share)",
			What:   "tid comparisons read j_commit_sequence without j_state_lock",
			Expect: "doc-noncorrect", ExpectArg: "ES(journal_t.j_state_lock)",
		},
		{
			ID: "t_start-stop", Type: "transaction_t", Member: "t_start", Write: false,
			Where:  "jbd2_journal_stop",
			Paper:  "Tab. 4 (transaction_t's non-correct remainder)",
			What:   "handle close reads t_start lock-free for the batching heuristic",
			Expect: "doc-noncorrect", ExpectArg: "EO(journal_t.j_state_lock)",
		},
		{
			ID: "atomic_t-stale-doc", Type: "transaction_t", Member: "t_updates", Write: true,
			Where:  "atomic_inc",
			Paper:  "Sec. 7.3 ('transformed from an int into an atomic_t without updating the documentation')",
			What:   "t_updates/t_outstanding_credits are only touched through atomic helpers, so their documented j_state_lock rules cannot be validated",
			Expect: "unobserved",
		},
		{
			ID: "jh-lockfree-peeks", Type: "journal_head", Member: "b_jcount", Write: false,
			Where:  "jbd2_journal_put_journal_head",
			Paper:  "Tab. 4 (journal_head's 26% incorrect share)",
			What:   "refcount and list-state peeks run before taking the buffer bit lock",
			Expect: "doc-noncorrect", ExpectArg: "EO(buffer_head.b_state)",
		},
		{
			ID: "bd-abba-inversion", Type: "block_device", Member: "bd_holder", Write: true,
			Where:  "bd_forget",
			Paper:  "Sec. 3.2 (lockdep, the related-work baseline this extension reimplements)",
			What:   "bd_forget's slow path nests bdev_lock inside i_lock, inverting bd_acquire's bdev_lock -> i_lock order — a potential ABBA deadlock",
			Expect: "lockdep", ExpectArg: "bdev_lock",
		},
		{
			ID: "chown-sloppy", Type: "inode", Subclass: "devtmpfs", Member: "i_uid", Write: true,
			Where:  "simple_setattr",
			Paper:  "Sec. 5.3 item 1 (subclasses locking differently)",
			What:   "the devtmpfs attribute shortcut skips i_rwsem entirely",
			Expect: "winner-lacks", ExpectArg: "ES(i_rwsem in inode)",
		},
	}
}
