package fs

import (
	"lockdoc/internal/kernel"
)

// createInode dispatches inode creation to the filesystem. The caller
// (vfs_create and friends) holds the parent directory's i_rwsem, so the
// operation-vector stores on the fresh inode appear under an EO
// i_rwsem — the rule family Fig. 8 reports for i_op, i_fop, i_acl,
// i_default_acl and i_private.
func (sb *SuperBlock) createInode(c *kernel.Context, dir *Dentry, mode uint64) *Inode {
	f := sb.FS
	switch {
	case sb.Behavior.Journaled:
		return sb.ext4CreateInode(c, dir, mode)
	case sb.FSType == "sockfs":
		defer f.call(c, "sock_alloc")()
		c.Cover(3)
		in := f.allocInode(c, sb, SIFsock|mode&0o777)
		in.set(c, "i_op", 0x50c4)
		return in
	case sb.FSType == "anon_inodefs":
		defer f.call(c, "anon_inode_getfile")()
		c.Cover(3)
		in := f.allocInode(c, sb, mode)
		in.set(c, "i_fop", 0xa404)
		return in
	case sb.FSType == "debugfs":
		defer f.call(c, "debugfs_create_file")()
		c.Cover(3)
		in := f.allocInode(c, sb, mode)
		// debugfs publishes only the private payload outside init —
		// Tab. 6 derives exactly one write rule for inode:debugfs.
		in.set(c, "i_private", 0xdeb)
		return in
	case sb.FSType == "proc":
		defer f.call(c, "proc_get_inode")()
		c.Cover(3)
		in := f.allocInode(c, sb, mode)
		in.Obj.Poke(in.Obj.Typ.MemberIndex("i_private"), 0x1de)
		return in
	default:
		defer f.call(c, "ramfs_mknod")()
		c.Cover(3)
		in := f.allocInode(c, sb, mode)
		in.set(c, "i_op", 0x4a3f)
		in.set(c, "i_fop", 0x4a40)
		return in
	}
}

// removeName is the filesystem-side directory entry removal; the caller
// holds the directory's i_rwsem.
func (sb *SuperBlock) removeName(c *kernel.Context, dir *Dentry, d *Dentry) {
	f := sb.FS
	switch {
	case sb.Behavior.Journaled:
		defer f.call(c, "ext4_unlink")()
		c.Cover(4)
		h := sb.Journal.Start(c, 4)
		b := f.GetBlk(c, sb.Bdev, dir.Inode.Ino)
		jh := f.AttachJournalHead(c, sb.Journal, b)
		h.GetWriteAccess(c, jh)
		_ = dir.Inode.get(c, "i_size")
		h.DirtyMetadata(c, jh)
		f.Brelse(c, b)
		h.Stop(c)
	default:
		defer f.call(c, "simple_unlink")()
		c.Cover(2)
		_ = dir.Inode.get(c, "i_size")
	}
}

// writeFile appends n bytes to a regular file.
func (sb *SuperBlock) writeFile(c *kernel.Context, in *Inode, n uint64) {
	f := sb.FS
	if sb.Behavior.Journaled {
		sb.ext4WriteFile(c, in, n)
		return
	}
	// Generic in-memory write path: i_rwsem exclusive, size via the
	// seqcount, timestamps lock-free.
	in.IRwsem.DownWrite(c)
	f.ISizeWrite(c, in, in.size+n)
	in.set(c, "i_data.nrpages", in.get(c, "i_data.nrpages")+n/4096+1)
	in.IRwsem.UpWrite(c)
	f.InodeAddBytes(c, in, n)
	f.GenericUpdateTime(c, in, true)
}

// readFile reads a file and returns its size.
func (sb *SuperBlock) readFile(c *kernel.Context, in *Inode) uint64 {
	f := sb.FS
	switch {
	case sb.Behavior.Journaled:
		defer f.call(c, "ext4_file_read_iter")()
		c.Cover(3)
		size := f.ISizeRead(c, in)
		_ = in.get(c, "i_blocks") // lock-free i_blocks read (Tab. 5: 0%)
		_ = in.get(c, "i_flags")
		_ = in.get(c, "i_data.nrpages")
		_ = in.get(c, "i_data.a_ops")
		_ = in.get(c, "i_data.gfp_mask")
		_ = in.get(c, "i_data.host")
		_ = in.get(c, "i_data.flags")
		_ = in.get(c, "i_write_hint")
		_ = in.get(c, "i_crypt_info")
		c.Cover(17)
		return size
	case sb.FSType == "proc":
		// proc reads everything lock-free: its inodes are immutable
		// after creation, so the subclass legitimately needs no locks.
		defer f.call(c, "proc_pid_readdir")()
		c.Cover(3)
		_ = in.get(c, "i_private")
		_ = in.get(c, "i_mode")
		_ = in.get(c, "i_uid")
		_ = in.get(c, "i_size")
		_ = in.get(c, "i_mtime")
		_ = in.get(c, "i_fop")
		return in.size
	case sb.FSType == "sysfs":
		defer f.call(c, "sysfs_read_file")()
		c.Cover(3)
		_ = in.get(c, "i_private")
		_ = in.get(c, "i_size")
		_ = in.get(c, "i_generation")
		return in.size
	default:
		size := f.ISizeRead(c, in)
		_ = in.get(c, "i_blocks")
		return size
	}
}

// fsyncFile flushes one file.
func (sb *SuperBlock) fsyncFile(c *kernel.Context, in *Inode) {
	f := sb.FS
	if !sb.Behavior.Journaled {
		return
	}
	defer f.call(c, "ext4_sync_file")()
	c.Cover(3)
	j := sb.Journal
	if j.Running != nil {
		tid := j.Running.TID
		if !j.TIDGeq(c, tid) {
			c.Cover(12)
			j.Commit(c)
			j.WaitCommit(c, tid)
		}
	}
	_ = in.get(c, "i_state")
}

// truncateBlocks releases blocks past size; the caller holds i_rwsem.
func (sb *SuperBlock) truncateBlocks(c *kernel.Context, in *Inode, size uint64) {
	f := sb.FS
	if !sb.Behavior.Journaled {
		if in.size > size {
			f.InodeSubBytes(c, in, in.size-size)
		}
		return
	}
	defer f.call(c, "ext4_truncate")()
	c.Cover(4)
	h := sb.Journal.Start(c, 8)
	func() {
		defer f.call(c, "ext4_free_blocks")()
		c.Cover(3)
		// The deviant fast path: roughly one truncate in sixteen resets
		// the block count without i_lock (inode_set_bytes), dragging
		// i_blocks write support to the ~94% of Tab. 5.
		if f.K.Sched.Rand(16) == 0 {
			c.Cover(14)
			f.inodeSetBytesUnlocked(c, in, size)
		} else {
			f.InodeSubBytes(c, in, in.size-size)
		}
	}()
	f.ext4MarkInodeDirty(c, h, in)
	h.Stop(c)
}

// markInodeDirtyFS pushes attribute changes to storage.
func (sb *SuperBlock) markInodeDirtyFS(c *kernel.Context, in *Inode) {
	f := sb.FS
	if !sb.Behavior.Journaled {
		f.MarkInodeDirty(c, in)
		return
	}
	h := sb.Journal.Start(c, 2)
	f.ext4MarkInodeDirty(c, h, in)
	h.Stop(c)
	f.MarkInodeDirty(c, in)
}
