package checkpoint

import (
	"time"

	"lockdoc/internal/obs"
)

// Metrics is the checkpoint instrument set: write/recover latency and
// segment accounting. A nil *Metrics (the default) makes every hook a
// no-op.
type Metrics struct {
	SegmentsWritten   *obs.Counter
	BytesWritten      *obs.Counter
	WriteSeconds      *obs.Histogram
	SegmentsRecovered *obs.Counter
	SegmentsDiscarded *obs.Counter
	RecoverSeconds    *obs.Histogram
}

// NewMetrics registers the checkpoint instrument set on reg (nil reg,
// nil metrics).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		SegmentsWritten:   reg.Counter("lockdoc_checkpoint_segments_written_total", "Checkpoint segments durably published."),
		BytesWritten:      reg.Counter("lockdoc_checkpoint_bytes_written_total", "Raw payload bytes checkpointed."),
		WriteSeconds:      reg.Histogram("lockdoc_checkpoint_write_seconds", "Checkpoint write latency (segment + manifest).", nil),
		SegmentsRecovered: reg.Counter("lockdoc_checkpoint_segments_recovered_total", "Segments replayed by recovery."),
		SegmentsDiscarded: reg.Counter("lockdoc_checkpoint_segments_discarded_total", "Manifest entries discarded by recovery (torn or damaged)."),
		RecoverSeconds:    reg.Histogram("lockdoc_checkpoint_recover_seconds", "Checkpoint recovery latency.", nil),
	}
}

func (m *Metrics) wrote(start time.Time, bytes int) {
	if m == nil {
		return
	}
	m.SegmentsWritten.Inc()
	m.BytesWritten.Add(uint64(bytes))
	m.WriteSeconds.ObserveSince(start)
}

func (m *Metrics) recovered(start time.Time, segs, discarded int) {
	if m == nil {
		return
	}
	m.SegmentsRecovered.Add(uint64(segs))
	m.SegmentsDiscarded.Add(uint64(discarded))
	m.RecoverSeconds.ObserveSince(start)
}
