// Package checkpoint is lockdocd's crash-safe trace store: an
// append-only directory of CRC-checksummed segment files plus a
// manifest, from which a restarted daemon recovers the exact byte
// stream it had ingested before dying.
//
// One segment holds the raw bytes of one successful ingestion step — a
// full trace load (Kind Full, the head of a chain) or an append chunk
// (Kind Append). The discipline per step:
//
//  1. the segment payload is written to a temp file, fsynced, and
//     renamed into place (so a torn write never occupies a final name),
//  2. only then is one line recording its size and CRC appended to the
//     MANIFEST file and fsynced.
//
// Every manifest line carries its own CRC, so a crash mid-append tears
// at most the final line, which recovery ignores. Recovery trusts the
// manifest only as far as the segments confirm it: it replays entries
// in order and stops at the first line whose segment is missing,
// short, or fails its CRC — everything after a damaged segment is
// discarded, never partially applied. A full load starts a new chain
// by atomically replacing the manifest (temp + fsync + rename), which
// also makes the old chain's segments garbage.
//
// The file operations go through the FS interface so the chaos tests
// can interpose torn writes, failed renames and transient faults
// (internal/faultinject implements the interface structurally); OSFS
// is the real implementation.
package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind labels what one segment holds.
type Kind uint8

const (
	// Full is the head of a chain: a complete trace that replaces
	// whatever was loaded before it.
	Full Kind = iota + 1
	// Append is a continuation chunk ingested on top of the chain so
	// far.
	Append
)

func (k Kind) String() string {
	switch k {
	case Full:
		return "full"
	case Append:
		return "append"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

func parseKind(s string) (Kind, bool) {
	switch s {
	case "full":
		return Full, true
	case "append":
		return Append, true
	default:
		return 0, false
	}
}

// FS is the file-operation surface the store runs on. Every
// implementation must make WriteFile and AppendFile durable (fsync
// before returning) — the store's crash-safety argument depends on it.
// Paths are full paths; the store does the joining.
type FS interface {
	MkdirAll(dir string) error
	// WriteFile creates (or truncates) name with data and fsyncs it.
	WriteFile(name string, data []byte) error
	// AppendFile appends data to name (creating it if absent) and
	// fsyncs it.
	AppendFile(name string, data []byte) error
	Rename(oldpath, newpath string) error
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the entry names (not paths) of dir.
	ReadDir(dir string) ([]string, error)
	Remove(name string) error
}

// OSFS is the real filesystem, with the fsync discipline the store
// requires: file contents are synced before WriteFile/AppendFile
// return, and Rename syncs the parent directory so the new name
// survives a crash.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o777) }

func (OSFS) WriteFile(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OSFS) AppendFile(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OSFS) Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	// Sync the directory so the rename itself is durable. Best-effort:
	// some filesystems refuse directory fsync, and the rename already
	// happened.
	if d, err := os.Open(filepath.Dir(newpath)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OSFS) Remove(name string) error { return os.Remove(name) }

const (
	manifestName = "MANIFEST"
	tmpPrefix    = "tmp-"
	segPrefix    = "seg-"
	segSuffix    = ".ckpt"
	lineVersion  = "v1"
)

// Segment describes one checkpointed ingestion step as the manifest
// records it.
type Segment struct {
	Seq  uint64
	Kind Kind
	Name string // file name inside the checkpoint directory
	Size int64
	CRC  uint32 // IEEE CRC32 of the payload
}

// RecoveredSegment is a Segment whose payload passed verification.
type RecoveredSegment struct {
	Segment
	Data []byte
}

// Options configures Open.
type Options struct {
	// FS overrides the file operations; nil means OSFS.
	FS FS
	// Metrics, when non-nil, records write/recover latency and
	// segment accounting.
	Metrics *Metrics
}

// Store is one checkpoint directory. Methods are not safe for
// concurrent use; lockdocd serializes them under its ingestion lock.
type Store struct {
	dir string
	fs  FS
	m   *Metrics

	seq     uint64 // last sequence number used in this directory
	hasHead bool   // a Full segment heads the manifest chain

	// dirtySeq, when non-zero, records a segment whose manifest append
	// failed: the manifest may end in a torn line, and appending another
	// line after it would concatenate into garbage that truncates every
	// later entry at recovery — silently un-committing acknowledged
	// ingests. Append repairs the manifest (and drops any trace of the
	// failed entry) before writing past it.
	dirtySeq uint64
}

// Open prepares dir as a checkpoint directory, creating it if needed.
// Leftover temp files from a crash mid-write are removed; existing
// segments and manifest are kept for Recover.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, fs: fsys, m: opts.Metrics}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing %s: %w", dir, err)
	}
	for _, name := range names {
		if strings.HasPrefix(name, tmpPrefix) {
			// A crash between temp write and rename left this behind;
			// it was never committed, so it is garbage.
			_ = fsys.Remove(filepath.Join(dir, name))
			continue
		}
		// Seed the sequence counter past any existing segment file,
		// manifest-listed or not, so new names never collide.
		if seq, ok := parseSegName(name); ok && seq > s.seq {
			s.seq = seq
		}
	}
	s.repairManifest()
	for _, seg := range s.manifest() {
		if seg.Seq > s.seq {
			s.seq = seg.Seq
		}
		if seg.Kind == Full {
			s.hasHead = true
		}
	}
	return s, nil
}

// Dir returns the checkpoint directory path.
func (s *Store) Dir() string { return s.dir }

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	seq, err := strconv.ParseUint(mid, 10, 64)
	return seq, err == nil
}

// manifestLine renders one segment entry, self-checksummed: the final
// field is the CRC of everything before it, so a torn tail line is
// detectable on its own.
func manifestLine(seg Segment) string {
	body := fmt.Sprintf("%s %d %s %d %08x %s", lineVersion, seg.Seq, seg.Kind, seg.Size, seg.CRC, seg.Name)
	return fmt.Sprintf("%s %08x\n", body, crc32.ChecksumIEEE([]byte(body)))
}

// parseManifestLine inverts manifestLine; ok is false for torn,
// damaged or foreign lines.
func parseManifestLine(line string) (Segment, bool) {
	body, crcHex, found := cutLast(line, " ")
	if !found {
		return Segment{}, false
	}
	lineCRC, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil || uint32(lineCRC) != crc32.ChecksumIEEE([]byte(body)) {
		return Segment{}, false
	}
	f := strings.Fields(body)
	if len(f) != 6 || f[0] != lineVersion {
		return Segment{}, false
	}
	seq, err1 := strconv.ParseUint(f[1], 10, 64)
	kind, okKind := parseKind(f[2])
	size, err2 := strconv.ParseInt(f[3], 10, 64)
	crc, err3 := strconv.ParseUint(f[4], 16, 32)
	if err1 != nil || !okKind || err2 != nil || err3 != nil {
		return Segment{}, false
	}
	return Segment{Seq: seq, Kind: kind, Name: f[5], Size: size, CRC: uint32(crc)}, true
}

func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// parseManifest parses raw's valid prefix: entries up to the first
// torn or damaged line, in order, plus the byte length of that prefix.
// Payloads are not verified here — Recover does that.
func parseManifest(raw []byte) (segs []Segment, validLen int) {
	for _, line := range strings.SplitAfter(string(raw), "\n") {
		if line == "" {
			continue
		}
		if !strings.HasSuffix(line, "\n") {
			break // torn final line: the append that wrote it never finished
		}
		seg, ok := parseManifestLine(strings.TrimSuffix(line, "\n"))
		if !ok {
			break // damaged line: nothing after it is trustworthy
		}
		segs = append(segs, seg)
		validLen += len(line)
	}
	return segs, validLen
}

// manifest reads and parses the manifest's valid prefix.
func (s *Store) manifest() []Segment {
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return nil
	}
	segs, _ := parseManifest(raw)
	return segs
}

// repairManifest truncates the manifest back to its valid prefix
// (atomically, via temp + rename) so a torn tail line from a crashed
// append cannot concatenate with — and so corrupt — the next line
// appended after restart. Best-effort: a failed repair leaves the
// manifest as it was, and every reader already ignores the torn tail.
func (s *Store) repairManifest() {
	path := filepath.Join(s.dir, manifestName)
	raw, err := s.fs.ReadFile(path)
	if err != nil {
		return
	}
	_, valid := parseManifest(raw)
	if valid == len(raw) {
		return
	}
	tmp := filepath.Join(s.dir, tmpPrefix+manifestName)
	if s.fs.WriteFile(tmp, raw[:valid]) == nil {
		_ = s.fs.Rename(tmp, path)
	}
}

// writeSegment writes data under the next sequence's final name via
// temp + fsync + rename and returns its manifest entry.
func (s *Store) writeSegment(kind Kind, data []byte) (Segment, error) {
	s.seq++
	seg := Segment{
		Seq:  s.seq,
		Kind: kind,
		Name: segName(s.seq),
		Size: int64(len(data)),
		CRC:  crc32.ChecksumIEEE(data),
	}
	tmp := filepath.Join(s.dir, tmpPrefix+seg.Name)
	if err := s.fs.WriteFile(tmp, data); err != nil {
		return Segment{}, fmt.Errorf("checkpoint: writing %s: %w", tmp, err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, seg.Name)); err != nil {
		return Segment{}, fmt.Errorf("checkpoint: publishing %s: %w", seg.Name, err)
	}
	return seg, nil
}

// Reset starts a new chain headed by a Full segment holding data: the
// segment is published first, then the manifest is atomically replaced
// so the old chain disappears in one step. Old chain segments become
// garbage and are removed best-effort.
func (s *Store) Reset(data []byte) (Segment, error) {
	start := time.Now()
	old := s.manifest()
	seg, err := s.writeSegment(Full, data)
	if err != nil {
		return Segment{}, err
	}
	tmp := filepath.Join(s.dir, tmpPrefix+manifestName)
	if err := s.fs.WriteFile(tmp, []byte(manifestLine(seg))); err != nil {
		return Segment{}, fmt.Errorf("checkpoint: writing manifest: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return Segment{}, fmt.Errorf("checkpoint: publishing manifest: %w", err)
	}
	s.hasHead = true
	s.dirtySeq = 0 // the replacement erased any torn tail wholesale
	for _, stale := range old {
		_ = s.fs.Remove(filepath.Join(s.dir, stale.Name))
	}
	s.m.wrote(start, len(data))
	return seg, nil
}

// ErrNoHead rejects an Append into a directory whose manifest has no
// Full head to continue from.
var ErrNoHead = errors.New("checkpoint: no full-trace head segment; Reset first")

// Append extends the current chain with an Append segment holding
// data. The payload is durable before the manifest references it, so
// a crash between the two leaves a harmless orphan segment, never a
// manifest entry without its bytes.
func (s *Store) Append(data []byte) (Segment, error) {
	if !s.hasHead {
		return Segment{}, ErrNoHead
	}
	if s.dirtySeq != 0 {
		if err := s.repairManifestExcluding(s.dirtySeq); err != nil {
			return Segment{}, fmt.Errorf("checkpoint: repairing manifest after failed append: %w", err)
		}
		s.dirtySeq = 0
	}
	start := time.Now()
	seg, err := s.writeSegment(Append, data)
	if err != nil {
		return Segment{}, err
	}
	if err := s.fs.AppendFile(filepath.Join(s.dir, manifestName), []byte(manifestLine(seg))); err != nil {
		// The line may be torn on disk — or, worse, fully persisted
		// despite the error. Either way the entry was never
		// acknowledged, so it must not survive: mark the manifest dirty
		// and drop the orphan payload.
		s.dirtySeq = seg.Seq
		_ = s.fs.Remove(filepath.Join(s.dir, seg.Name))
		return Segment{}, fmt.Errorf("checkpoint: appending manifest: %w", err)
	}
	s.m.wrote(start, len(data))
	return seg, nil
}

// repairManifestExcluding atomically rewrites the manifest as its valid
// prefix truncated before badSeq, erasing both torn tail bytes and any
// fully-persisted line for the entry whose append reported failure.
func (s *Store) repairManifestExcluding(badSeq uint64) error {
	path := filepath.Join(s.dir, manifestName)
	raw, err := s.fs.ReadFile(path)
	if err != nil {
		return err
	}
	segs, valid := parseManifest(raw)
	var buf bytes.Buffer
	for _, seg := range segs {
		if seg.Seq >= badSeq {
			break
		}
		buf.WriteString(manifestLine(seg))
	}
	if valid == len(raw) && buf.Len() == valid {
		return nil // nothing torn, nothing to erase
	}
	tmp := filepath.Join(s.dir, tmpPrefix+manifestName)
	if err := s.fs.WriteFile(tmp, buf.Bytes()); err != nil {
		return err
	}
	return s.fs.Rename(tmp, path)
}

// Recover returns the longest valid chain the directory holds: the
// manifest's valid prefix, further truncated at the first segment
// whose payload is missing, short, or fails its CRC, and at any entry
// that breaks chain shape (the first entry must be Full; a later Full
// restarts the chain). The returned segments carry their verified
// payloads; Discarded counts manifest entries dropped by truncation.
func (s *Store) Recover() (segs []RecoveredSegment, discarded int, err error) {
	start := time.Now()
	entries := s.manifest()
	for i, seg := range entries {
		if seg.Kind == Full {
			// A Full entry supersedes everything before it (a Reset
			// whose manifest replacement raced a crash can leave one
			// mid-chain). Restart the recovered chain here.
			segs = segs[:0]
		} else if len(segs) == 0 && seg.Kind == Append {
			// An Append with no head cannot be replayed.
			discarded = len(entries) - i
			break
		}
		data, rerr := s.fs.ReadFile(filepath.Join(s.dir, seg.Name))
		if rerr != nil || int64(len(data)) != seg.Size || crc32.ChecksumIEEE(data) != seg.CRC {
			// Torn or damaged payload: this entry and everything after
			// it never fully happened.
			discarded = len(entries) - i
			break
		}
		segs = append(segs, RecoveredSegment{Segment: seg, Data: data})
	}
	s.m.recovered(start, len(segs), discarded)
	return segs, discarded, nil
}

// Segments lists the manifest's valid prefix without reading payloads
// (Recover's cheap sibling, for status endpoints).
func (s *Store) Segments() []Segment {
	segs := s.manifest()
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs
}
