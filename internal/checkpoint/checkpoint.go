// Package checkpoint is lockdocd's crash-safe trace store: an
// append-only directory of CRC-checksummed segment files plus a
// manifest, from which a restarted daemon recovers the exact byte
// stream it had ingested before dying.
//
// One segment holds the raw bytes of one successful ingestion step — a
// full trace load (Kind Full, the head of a chain) or an append chunk
// (Kind Append). The discipline per step:
//
//  1. the segment payload is written to a temp file, fsynced, and
//     renamed into place (so a torn write never occupies a final name),
//  2. only then is one line recording its size and CRC appended to the
//     MANIFEST file and fsynced.
//
// Every manifest line carries its own CRC, so a crash mid-append tears
// at most the final line, which recovery ignores. Recovery trusts the
// manifest only as far as the segments confirm it: it replays entries
// in order and stops at the first line whose segment is missing,
// short, or fails its CRC — everything after a damaged segment is
// discarded, never partially applied. A full load starts a new chain
// by atomically replacing the manifest (temp + fsync + rename), which
// also makes the old chain's segments garbage.
//
// The manifest line format and the temp + fsync + rename idiom live in
// internal/manifest, shared with internal/segstore; FS and OSFS are
// re-exported from there so the chaos tests (internal/faultinject)
// keep interposing structurally.
package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"lockdoc/internal/manifest"
)

// Kind labels what one segment holds.
type Kind uint8

const (
	// Full is the head of a chain: a complete trace that replaces
	// whatever was loaded before it.
	Full Kind = iota + 1
	// Append is a continuation chunk ingested on top of the chain so
	// far.
	Append
)

func (k Kind) String() string {
	switch k {
	case Full:
		return "full"
	case Append:
		return "append"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

func parseKind(s string) (Kind, bool) {
	switch s {
	case "full":
		return Full, true
	case "append":
		return Append, true
	default:
		return 0, false
	}
}

// FS is the file-operation surface the store runs on, shared with the
// other durable stores via internal/manifest.
type FS = manifest.FS

// OSFS is the real filesystem with the fsync discipline the store
// requires.
type OSFS = manifest.OSFS

const (
	manifestName = manifest.Name
	tmpPrefix    = manifest.TmpPrefix
	segPrefix    = "seg-"
	segSuffix    = ".ckpt"
)

// Segment describes one checkpointed ingestion step as the manifest
// records it.
type Segment struct {
	Seq  uint64
	Kind Kind
	Name string // file name inside the checkpoint directory
	Size int64
	CRC  uint32 // IEEE CRC32 of the payload
}

func (seg Segment) entry() manifest.Entry {
	return manifest.Entry{Seq: seg.Seq, Kind: seg.Kind.String(), Name: seg.Name, Size: seg.Size, CRC: seg.CRC}
}

func segmentFromEntry(e manifest.Entry) (Segment, bool) {
	kind, ok := parseKind(e.Kind)
	if !ok {
		return Segment{}, false
	}
	return Segment{Seq: e.Seq, Kind: kind, Name: e.Name, Size: e.Size, CRC: e.CRC}, true
}

// RecoveredSegment is a Segment whose payload passed verification.
type RecoveredSegment struct {
	Segment
	Data []byte
}

// Options configures Open.
type Options struct {
	// FS overrides the file operations; nil means OSFS.
	FS FS
	// Metrics, when non-nil, records write/recover latency and
	// segment accounting.
	Metrics *Metrics
}

// Store is one checkpoint directory. Methods are not safe for
// concurrent use; lockdocd serializes them under its ingestion lock.
type Store struct {
	dir string
	fs  FS
	m   *Metrics

	seq     uint64 // last sequence number used in this directory
	hasHead bool   // a Full segment heads the manifest chain

	// dirtySeq, when non-zero, records a segment whose manifest append
	// failed: the manifest may end in a torn line, and appending another
	// line after it would concatenate into garbage that truncates every
	// later entry at recovery — silently un-committing acknowledged
	// ingests. Append repairs the manifest (and drops any trace of the
	// failed entry) before writing past it.
	dirtySeq uint64
}

// Open prepares dir as a checkpoint directory, creating it if needed.
// Leftover temp files from a crash mid-write are removed; existing
// segments and manifest are kept for Recover.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, fs: fsys, m: opts.Metrics}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing %s: %w", dir, err)
	}
	manifest.RemoveTemps(fsys, dir, names)
	for _, name := range names {
		// Seed the sequence counter past any existing segment file,
		// manifest-listed or not, so new names never collide.
		if seq, ok := parseSegName(name); ok && seq > s.seq {
			s.seq = seq
		}
	}
	manifest.Repair(fsys, dir)
	for _, seg := range s.manifest() {
		if seg.Seq > s.seq {
			s.seq = seg.Seq
		}
		if seg.Kind == Full {
			s.hasHead = true
		}
	}
	return s, nil
}

// Dir returns the checkpoint directory path.
func (s *Store) Dir() string { return s.dir }

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	seq, err := strconv.ParseUint(mid, 10, 64)
	return seq, err == nil
}

// manifest reads and parses the manifest's valid prefix, dropping any
// entry whose kind this store doesn't recognise (and everything after
// it — nothing past a foreign entry is trustworthy as a chain).
func (s *Store) manifest() []Segment {
	var segs []Segment
	for _, e := range manifest.Load(s.fs, s.dir) {
		seg, ok := segmentFromEntry(e)
		if !ok {
			break
		}
		segs = append(segs, seg)
	}
	return segs
}

// writeSegment writes data under the next sequence's final name via
// temp + fsync + rename and returns its manifest entry.
func (s *Store) writeSegment(kind Kind, data []byte) (Segment, error) {
	s.seq++
	seg := Segment{
		Seq:  s.seq,
		Kind: kind,
		Name: segName(s.seq),
		Size: int64(len(data)),
		CRC:  crc32.ChecksumIEEE(data),
	}
	if err := manifest.WriteFileAtomic(s.fs, s.dir, seg.Name, data); err != nil {
		return Segment{}, fmt.Errorf("checkpoint: publishing %s: %w", seg.Name, err)
	}
	return seg, nil
}

// Reset starts a new chain headed by a Full segment holding data: the
// segment is published first, then the manifest is atomically replaced
// so the old chain disappears in one step. Old chain segments become
// garbage and are removed best-effort.
func (s *Store) Reset(data []byte) (Segment, error) {
	start := time.Now()
	old := s.manifest()
	seg, err := s.writeSegment(Full, data)
	if err != nil {
		return Segment{}, err
	}
	if err := manifest.Replace(s.fs, s.dir, []manifest.Entry{seg.entry()}); err != nil {
		return Segment{}, fmt.Errorf("checkpoint: publishing manifest: %w", err)
	}
	s.hasHead = true
	s.dirtySeq = 0 // the replacement erased any torn tail wholesale
	for _, stale := range old {
		_ = s.fs.Remove(filepath.Join(s.dir, stale.Name))
	}
	s.m.wrote(start, len(data))
	return seg, nil
}

// ErrNoHead rejects an Append into a directory whose manifest has no
// Full head to continue from.
var ErrNoHead = errors.New("checkpoint: no full-trace head segment; Reset first")

// Append extends the current chain with an Append segment holding
// data. The payload is durable before the manifest references it, so
// a crash between the two leaves a harmless orphan segment, never a
// manifest entry without its bytes.
func (s *Store) Append(data []byte) (Segment, error) {
	if !s.hasHead {
		return Segment{}, ErrNoHead
	}
	if s.dirtySeq != 0 {
		if err := s.repairManifestExcluding(s.dirtySeq); err != nil {
			return Segment{}, fmt.Errorf("checkpoint: repairing manifest after failed append: %w", err)
		}
		s.dirtySeq = 0
	}
	start := time.Now()
	seg, err := s.writeSegment(Append, data)
	if err != nil {
		return Segment{}, err
	}
	if err := manifest.AppendEntry(s.fs, s.dir, seg.entry()); err != nil {
		// The line may be torn on disk — or, worse, fully persisted
		// despite the error. Either way the entry was never
		// acknowledged, so it must not survive: mark the manifest dirty
		// and drop the orphan payload.
		s.dirtySeq = seg.Seq
		_ = s.fs.Remove(filepath.Join(s.dir, seg.Name))
		return Segment{}, fmt.Errorf("checkpoint: appending manifest: %w", err)
	}
	s.m.wrote(start, len(data))
	return seg, nil
}

// repairManifestExcluding atomically rewrites the manifest as its valid
// prefix truncated before badSeq, erasing both torn tail bytes and any
// fully-persisted line for the entry whose append reported failure.
func (s *Store) repairManifestExcluding(badSeq uint64) error {
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return err
	}
	entries, valid := manifest.Parse(raw)
	keep := entries[:0]
	keptLen := 0
	for _, e := range entries {
		if e.Seq >= badSeq {
			break
		}
		keep = append(keep, e)
		keptLen += len(e.Line())
	}
	if valid == len(raw) && keptLen == valid {
		return nil // nothing torn, nothing to erase
	}
	return manifest.Replace(s.fs, s.dir, keep)
}

// Recover returns the longest valid chain the directory holds: the
// manifest's valid prefix, further truncated at the first segment
// whose payload is missing, short, or fails its CRC, and at any entry
// that breaks chain shape (the first entry must be Full; a later Full
// restarts the chain). The returned segments carry their verified
// payloads; Discarded counts manifest entries dropped by truncation.
func (s *Store) Recover() (segs []RecoveredSegment, discarded int, err error) {
	start := time.Now()
	entries := s.manifest()
	for i, seg := range entries {
		if seg.Kind == Full {
			// A Full entry supersedes everything before it (a Reset
			// whose manifest replacement raced a crash can leave one
			// mid-chain). Restart the recovered chain here.
			segs = segs[:0]
		} else if len(segs) == 0 && seg.Kind == Append {
			// An Append with no head cannot be replayed.
			discarded = len(entries) - i
			break
		}
		data, rerr := s.fs.ReadFile(filepath.Join(s.dir, seg.Name))
		if rerr != nil || int64(len(data)) != seg.Size || crc32.ChecksumIEEE(data) != seg.CRC {
			// Torn or damaged payload: this entry and everything after
			// it never fully happened.
			discarded = len(entries) - i
			break
		}
		segs = append(segs, RecoveredSegment{Segment: seg, Data: data})
	}
	s.m.recovered(start, len(segs), discarded)
	return segs, discarded, nil
}

// Segments lists the manifest's valid prefix without reading payloads
// (Recover's cheap sibling, for status endpoints).
func (s *Store) Segments() []Segment {
	segs := s.manifest()
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs
}
