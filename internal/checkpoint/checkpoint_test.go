package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lockdoc/internal/faultinject"
	"lockdoc/internal/obs"
	"lockdoc/internal/resilience"
)

func payload(i int) []byte {
	return bytes.Repeat([]byte(fmt.Sprintf("chunk-%03d|", i)), 16)
}

// mustChain opens dir, resets a full head and appends n chunks.
func mustChain(t *testing.T, dir string, opts Options, n int) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reset(payload(0)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := s.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// checkChain asserts Recover returns exactly payloads 0..n with the
// right kinds.
func checkChain(t *testing.T, s *Store, n int) {
	t.Helper()
	segs, discarded, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if discarded != 0 {
		t.Errorf("Recover discarded %d entries, want 0", discarded)
	}
	if len(segs) != n+1 {
		t.Fatalf("recovered %d segments, want %d", len(segs), n+1)
	}
	for i, seg := range segs {
		wantKind := Append
		if i == 0 {
			wantKind = Full
		}
		if seg.Kind != wantKind {
			t.Errorf("segment %d kind = %s, want %s", i, seg.Kind, wantKind)
		}
		if !bytes.Equal(seg.Data, payload(i)) {
			t.Errorf("segment %d payload mismatch", i)
		}
	}
}

func TestRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustChain(t, dir, Options{}, 5)
	checkChain(t, s, 5)

	// A fresh Store over the same directory (the restarted daemon)
	// recovers the identical chain and keeps appending without name
	// collisions.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkChain(t, s2, 5)
	if _, err := s2.Append(payload(6)); err != nil {
		t.Fatal(err)
	}
	checkChain(t, s2, 6)
}

func TestAppendWithoutHead(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(payload(1)); !errors.Is(err, ErrNoHead) {
		t.Fatalf("Append into empty store = %v, want ErrNoHead", err)
	}
}

func TestResetReplacesChain(t *testing.T) {
	dir := t.TempDir()
	s := mustChain(t, dir, Options{}, 3)
	newFull := []byte("a brand new trace")
	if _, err := s.Reset(newFull); err != nil {
		t.Fatal(err)
	}
	segs, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].Kind != Full || !bytes.Equal(segs[0].Data, newFull) {
		t.Fatalf("post-Reset chain = %d segments, want just the new full trace", len(segs))
	}
	// The old chain's segment files are gone.
	names, _ := OSFS{}.ReadDir(dir)
	var segFiles int
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segFiles++
		}
	}
	if segFiles != 1 {
		t.Errorf("%d segment files after Reset, want 1 (old chain collected)", segFiles)
	}
}

func TestTornSegmentWriteNeverCommits(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(OSFS{})
	s := mustChain(t, dir, Options{FS: ffs}, 2)

	// The next segment write tears halfway: the temp file holds half
	// the payload and the write reports the crash.
	writes := ffs.Counts()[faultinject.OpWrite]
	ffs.TornWrite(writes, 0.5)
	if _, err := s.Append(payload(3)); err == nil {
		t.Fatal("torn write must surface an error")
	}

	// A restarted daemon sees the intact 3-segment chain — the torn
	// temp never occupied a final name, and Open sweeps it.
	ffs.Clear()
	s2, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	checkChain(t, s2, 2)
	if _, err := s2.Append(payload(3)); err != nil {
		t.Fatal(err)
	}
	checkChain(t, s2, 3)
}

func TestTornManifestLineIgnored(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(OSFS{})
	s := mustChain(t, dir, Options{FS: ffs}, 2)

	// The next manifest append tears mid-line (the segment payload
	// itself landed safely — crash between the two fsyncs).
	appends := ffs.Counts()[faultinject.OpAppend]
	ffs.TornAppend(appends, 0.4)
	if _, err := s.Append(payload(3)); err == nil {
		t.Fatal("torn manifest append must surface an error")
	}

	ffs.Clear()
	s2, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	// The torn final line is ignored; the chain is the committed
	// prefix. The orphan segment file is harmless.
	checkChain(t, s2, 2)
	// And the store keeps working past it: the next append lands on a
	// fresh manifest line despite the torn bytes before it.
	if _, err := s2.Append(payload(3)); err != nil {
		t.Fatal(err)
	}
	segs, _, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 4 || !bytes.Equal(segs[3].Data, payload(3)) {
		t.Fatalf("recovered %d segments after torn-line append, want 4", len(segs))
	}
}

func TestPartialRenameLeavesChainIntact(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(OSFS{})
	s := mustChain(t, dir, Options{FS: ffs}, 2)

	renames := ffs.Counts()[faultinject.OpRename]
	ffs.PartialRename(renames)
	if _, err := s.Append(payload(3)); err == nil {
		t.Fatal("failed rename must surface an error")
	}

	ffs.Clear()
	s2, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	checkChain(t, s2, 2)
	// Open swept the stranded temp file.
	names, _ := OSFS{}.ReadDir(dir)
	for _, n := range names {
		if len(n) >= len(tmpPrefix) && n[:len(tmpPrefix)] == tmpPrefix {
			t.Errorf("stranded temp file %s survived Open", n)
		}
	}
}

func TestDamagedSegmentTruncatesRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustChain(t, dir, Options{}, 4)

	// Flip a byte inside segment 3's payload on disk (bit rot, or an
	// fsync the drive lied about).
	name := filepath.Join(dir, segName(3))
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	raw = faultinject.FlipBit(raw, len(raw)/2, 3)
	if err := os.WriteFile(name, raw, 0o666); err != nil {
		t.Fatal(err)
	}

	segs, discarded, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Segments 1..2 (full + one append) survive; the damaged segment
	// and everything after it are discarded — recovery never serves a
	// chain containing unverified bytes.
	if len(segs) != 2 {
		t.Fatalf("recovered %d segments, want 2 (truncated at damage)", len(segs))
	}
	if discarded != 3 {
		t.Errorf("discarded = %d, want 3", discarded)
	}
}

func TestGarbageManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not a manifest\nat all\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	segs, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Fatalf("recovered %d segments from garbage, want 0", len(segs))
	}
	// The store is still usable: Reset starts a clean chain.
	if _, err := s.Reset(payload(0)); err != nil {
		t.Fatal(err)
	}
	checkChain(t, s, 0)
}

func TestFlakyAppendRetriedSucceeds(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(OSFS{})
	s := mustChain(t, dir, Options{FS: ffs}, 1)

	// The next two segment writes fail transiently, then the disk
	// recovers — the retry loop the server wraps Append in must land
	// the chunk without losing chain integrity.
	writes := ffs.Counts()[faultinject.OpWrite]
	ffs.FailN(faultinject.OpWrite, writes, 2, true)
	b := resilience.Backoff{Attempts: 4, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := b.Do(context.Background(), func() error {
		_, aerr := s.Append(payload(2))
		return aerr
	})
	if err != nil {
		t.Fatalf("retried append failed: %v", err)
	}
	checkChain(t, s, 2)
}

func TestMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	s := mustChain(t, t.TempDir(), Options{Metrics: m}, 2)
	if _, _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := m.SegmentsWritten.Value(); got != 3 {
		t.Errorf("segments_written = %d, want 3", got)
	}
	if m.BytesWritten.Value() == 0 {
		t.Error("bytes_written stayed 0")
	}
	if m.WriteSeconds.Count() != 3 || m.RecoverSeconds.Count() != 1 {
		t.Error("latency histograms not recorded")
	}
	if got := m.SegmentsRecovered.Value(); got != 3 {
		t.Errorf("segments_recovered = %d, want 3", got)
	}
}

// TestAppendAfterTornManifestRepairs pins the live-repair path: when a
// manifest append tears, the store must not append the next line after
// the torn bytes (concatenation would truncate every later entry at
// recovery). The failed entry vanishes; entries before and after it
// survive.
func TestAppendAfterTornManifestRepairs(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(OSFS{})
	s, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Reset(payload(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(payload(1)); err != nil {
		t.Fatal(err)
	}

	// The next manifest append persists half its line, then fails.
	ffs.TornAppend(1, 0.5)
	if _, err := s.Append(payload(2)); err == nil {
		t.Fatal("torn manifest append reported success")
	}

	// The store keeps running and accepts the next append; it must
	// repair the torn tail first so this entry stays recoverable.
	if _, err := s.Append(payload(3)); err != nil {
		t.Fatal(err)
	}

	segs, _, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, seg := range segs {
		got = append(got, string(seg.Data[:10]))
	}
	want := []string{"chunk-000|", "chunk-001|", "chunk-003|"}
	if len(segs) != 3 {
		t.Fatalf("recovered %d segments (%v), want the 3 acknowledged ones %v", len(segs), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("segment %d = %q, want %q", i, got[i], want[i])
		}
	}

	// A reopened store sees the same chain.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if segs, _, _ := s2.Recover(); len(segs) != 3 {
		t.Fatalf("reopened store recovered %d segments, want 3", len(segs))
	}
}
