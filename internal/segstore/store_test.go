package segstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lockdoc/internal/db"
	"lockdoc/internal/manifest"
	"lockdoc/internal/obs"
	"lockdoc/internal/trace"
	"lockdoc/internal/workload"
)

// buildRaw encodes the deterministic clock workload as a headered v2
// trace.
func buildRaw(t testing.TB, iterations int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterOptions(&buf, trace.WriterOptions{Version: trace.FormatV2, SyncInterval: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.RunClockExample(w, 1, iterations); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// importRaw consumes a headered trace into a fresh store and seals it.
func importRaw(t testing.TB, raw []byte) *db.DB {
	t.Helper()
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(db.Config{})
	if _, err := d.Consume(r); err != nil {
		t.Fatal(err)
	}
	return d.Seal()
}

// decodeAll reads every event from a headered trace.
func decodeAll(t testing.TB, raw []byte) []trace.Event {
	t.Helper()
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

// storeEvents replays the store's trace chain through a continuation
// reader.
func storeEvents(t testing.TB, s *Store) []trace.Event {
	t.Helper()
	r := trace.NewContinuationReader(s.TraceReader(), trace.ReaderOptions{})
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("replaying store trace: %v", err)
	}
	return evs
}

// exportCSV renders the full observation table — hydrating every group
// — so two snapshots can be compared byte-for-byte.
func exportCSV(t testing.TB, d *db.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.ExportObservationsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

var syncNeedle = []byte{0xFF, 'L', 'K', 'S', 'Y'}

// splitAtSync cuts a headered trace at its n-th sync marker (counting
// from 1), returning a headered prefix and a bare block continuation.
func splitAtSync(t testing.TB, raw []byte, n int) (head, tail []byte) {
	t.Helper()
	from := 1 // skip the first marker, which opens block 0
	for ; n > 0; n-- {
		i := bytes.Index(raw[from:], syncNeedle)
		if i < 0 {
			t.Fatalf("trace has too few sync markers")
		}
		from += i + 1
	}
	return raw[:from-1], raw[from-1:]
}

func TestTraceRoundTrip(t *testing.T) {
	raw := buildRaw(t, 300)
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ResetTrace(raw); err != nil {
		t.Fatal(err)
	}
	if !s.HasTrace() || s.HasState() {
		t.Fatalf("after ResetTrace: HasTrace=%v HasState=%v", s.HasTrace(), s.HasState())
	}
	want := decodeAll(t, raw)
	got := storeEvents(t, s)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("trace round trip mismatch: %d events in, %d out", len(want), len(got))
	}
}

func TestAppendTraceEquivalence(t *testing.T) {
	raw := buildRaw(t, 300)
	head, tail := splitAtSync(t, raw, 3)
	cut := len(splitAtSyncBytes(t, tail, 3))
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ResetTrace(head); err != nil {
		t.Fatal(err)
	}
	// Append the rest in two bare-block chunks.
	if err := s.AppendTrace(tail[:cut]); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTrace(tail[cut:]); err != nil {
		t.Fatal(err)
	}
	want := decodeAll(t, raw)
	got := storeEvents(t, s)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("append equivalence mismatch: %d events in, %d out", len(want), len(got))
	}
}

// splitAtSyncBytes returns the prefix of a bare block stream up to its
// n-th interior sync marker.
func splitAtSyncBytes(t testing.TB, blocks []byte, n int) []byte {
	t.Helper()
	from := 1
	for ; n > 0; n-- {
		i := bytes.Index(blocks[from:], syncNeedle)
		if i < 0 {
			t.Fatalf("block stream has too few sync markers")
		}
		from += i + 1
	}
	return blocks[:from-1]
}

func TestStateRoundTripReopen(t *testing.T) {
	raw := buildRaw(t, 300)
	dir := t.TempDir()
	reg := obs.NewRegistry()
	s, err := Open(dir, Options{Metrics: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ResetTrace(raw); err != nil {
		t.Fatal(err)
	}
	live := importRaw(t, raw)
	want := exportCSV(t, live)
	if err := s.Compact(live); err != nil {
		t.Fatal(err)
	}
	if !s.HasState() {
		t.Fatal("no state after Compact")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state must load lazily and render identically.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, ok, err := s2.LoadState()
	if err != nil || !ok {
		t.Fatalf("LoadState: ok=%v err=%v", ok, err)
	}
	if !snap.Sealed() {
		t.Fatal("loaded snapshot not sealed")
	}
	groups := snap.Groups()
	if len(groups) == 0 {
		t.Fatal("no groups in loaded state")
	}
	stubs := 0
	for _, g := range groups {
		if g.Seqs == nil {
			stubs++
		}
	}
	if stubs != len(groups) {
		t.Fatalf("expected all %d groups to start as stubs, got %d", len(groups), stubs)
	}
	got := exportCSV(t, snap)
	if !bytes.Equal(want, got) {
		t.Fatalf("state round trip: CSV export differs (%d vs %d bytes)", len(want), len(got))
	}
	for _, g := range snap.Groups() {
		if g.Seqs == nil {
			t.Fatal("group still a stub after full export")
		}
	}
	if err := snap.HydrateErr(); err != nil {
		t.Fatal(err)
	}
}

func TestSealToCompacts(t *testing.T) {
	raw := buildRaw(t, 100)
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ResetTrace(raw); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	d := db.New(db.Config{})
	if _, err := d.Consume(r); err != nil {
		t.Fatal(err)
	}
	view, err := d.SealTo(s)
	if err != nil {
		t.Fatal(err)
	}
	if view == nil || !view.Sealed() {
		t.Fatal("SealTo did not return a sealed view")
	}
	if !s.HasState() {
		t.Fatal("SealTo did not compact into the store")
	}
}

func TestCompactSupersedesOldState(t *testing.T) {
	raw := buildRaw(t, 200)
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ResetTrace(raw); err != nil {
		t.Fatal(err)
	}
	live := importRaw(t, raw)
	if err := s.Compact(live); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(live); err != nil {
		t.Fatal(err)
	}
	states := 0
	for _, e := range s.Manifest() {
		if e.Kind == KindState {
			states++
		}
	}
	if states != 1 {
		t.Fatalf("expected exactly 1 state entry after recompaction, got %d", states)
	}
	// Exactly one state file on disk, too.
	names, err := manifest.OSFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segFiles++
		}
	}
	if want := len(s.Manifest()); segFiles != want {
		t.Fatalf("%d segment files on disk, manifest has %d entries", segFiles, want)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	raw := buildRaw(t, 300)
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ResetTrace(raw); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(importRaw(t, raw)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	s2, err := Open(dir, Options{CacheBlocks: 1, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, ok, err := s2.LoadState()
	if err != nil || !ok {
		t.Fatalf("LoadState: ok=%v err=%v", ok, err)
	}
	exportCSV(t, snap) // hydrates every group through a 1-block cache
	if m.BlocksEvicted.Value() == 0 {
		t.Error("no evictions through a 1-block cache")
	}
	if m.BlocksInflated.Value() == 0 {
		t.Error("no inflations recorded")
	}
	// Hydration results stay valid after eviction (copies, not views).
	if err := snap.HydrateErr(); err != nil {
		t.Fatal(err)
	}
}

// TestReopenDamage is the damaged-store recovery table: each row
// corrupts the on-disk store a different way and asserts the reopen
// degrades exactly as designed — state falls back or is dropped, the
// trace survives as its valid prefix.
func TestReopenDamage(t *testing.T) {
	raw := buildRaw(t, 300)
	head, tail := splitAtSync(t, raw, 3)

	build := func(t *testing.T) string {
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.ResetTrace(head); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendTrace(tail); err != nil {
			t.Fatal(err)
		}
		if err := s.Compact(importRaw(t, raw)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	findSeg := func(t *testing.T, dir, kind string) string {
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var name string
		for _, e := range s.Manifest() {
			if e.Kind == kind {
				name = e.Name // last one of that kind
			}
		}
		if name == "" {
			t.Fatalf("no %s segment", kind)
		}
		return filepath.Join(dir, name)
	}
	wantEvents := len(decodeAll(t, raw))
	headEvents := len(decodeAll(t, head))

	t.Run("bad-state-crc", func(t *testing.T) {
		dir := build(t)
		path := findSeg(t, dir, KindState)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xA5
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, ok, err := s.LoadState(); ok || err != nil {
			t.Fatalf("corrupt state loaded: ok=%v err=%v", ok, err)
		}
		if got := len(storeEvents(t, s)); got != wantEvents {
			t.Fatalf("trace replay after state corruption: %d events, want %d", got, wantEvents)
		}
	})

	t.Run("missing-state-file", func(t *testing.T) {
		dir := build(t)
		if err := os.Remove(findSeg(t, dir, KindState)); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, ok, err := s.LoadState(); ok || err != nil {
			t.Fatalf("missing state loaded: ok=%v err=%v", ok, err)
		}
		if got := len(storeEvents(t, s)); got != wantEvents {
			t.Fatalf("trace replay: %d events, want %d", got, wantEvents)
		}
	})

	t.Run("truncated-trace-tail", func(t *testing.T) {
		dir := build(t)
		path := findSeg(t, dir, KindTrace) // the appended (second) trace segment
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if got := len(storeEvents(t, s)); got != headEvents {
			t.Fatalf("truncated tail: replay gave %d events, want the %d-event prefix", got, headEvents)
		}
		// State predates the damage and still serves.
		if _, ok, err := s.LoadState(); !ok || err != nil {
			t.Fatalf("state should survive trace damage: ok=%v err=%v", ok, err)
		}
	})

	t.Run("missing-manifest-entry", func(t *testing.T) {
		dir := build(t)
		// Drop the state line from the manifest; the file stays.
		s0, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var keep []manifest.Entry
		for _, e := range s0.Manifest() {
			if e.Kind != KindState {
				keep = append(keep, e)
			}
		}
		s0.Close()
		if err := manifest.Replace(manifest.OSFS{}, dir, keep); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if _, ok, err := s.LoadState(); ok || err != nil {
			t.Fatalf("unrecorded state loaded: ok=%v err=%v", ok, err)
		}
		if got := len(storeEvents(t, s)); got != wantEvents {
			t.Fatalf("trace replay: %d events, want %d", got, wantEvents)
		}
		// The orphan file's name must not be reused by the next write.
		if err := s.Compact(importRaw(t, raw)); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := s.LoadState(); !ok || err != nil {
			t.Fatalf("recompacted state: ok=%v err=%v", ok, err)
		}
	})

	t.Run("torn-manifest-tail", func(t *testing.T) {
		dir := build(t)
		f, err := os.OpenFile(filepath.Join(dir, manifest.Name), os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString("v1 9 trace 123 00000000 seg-000"); err != nil {
			t.Fatal(err)
		}
		f.Close()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if got := len(storeEvents(t, s)); got != wantEvents {
			t.Fatalf("trace replay: %d events, want %d", got, wantEvents)
		}
		if _, ok, err := s.LoadState(); !ok || err != nil {
			t.Fatalf("state after torn manifest: ok=%v err=%v", ok, err)
		}
	})
}

func TestRejectsV1AndMisalignedTraces(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var v1 bytes.Buffer
	w, err := trace.NewWriterOptions(&v1, trace.WriterOptions{Version: trace.FormatV1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.RunClockExample(w, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.ResetTrace(v1.Bytes()); err == nil {
		t.Error("v1 trace accepted")
	}
	if err := s.AppendTrace([]byte("garbage that is not a sync block")); err == nil {
		t.Error("misaligned block bytes accepted")
	}
}
