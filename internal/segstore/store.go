// Package segstore persists a lockdoc pipeline on disk as compressed,
// CRC-checksummed, append-only segment files described by a
// self-checksummed manifest (the same torn-write-safe directory
// discipline as internal/checkpoint, via internal/manifest).
//
// Two segment kinds live side by side. Trace segments hold the raw v2
// sync-block bytes of the ingested trace — the durable source of truth,
// replayable with trace.NewContinuationReader. State segments hold a
// compact encoding of one sealed snapshot: block 0 is the metadata
// (interned tables, counters, and the observation-group directory),
// block i+1 the observations of group i. Reopening a store therefore
// decodes only block 0 and materializes each group's observations
// lazily, on first use, which is what makes restart near-instant even
// for six-figure-event traces.
//
// Segment files are mmap'd on open (with a read-into-memory fallback
// off unix or when a custom FS is injected), and decompressed blocks
// go through a small LRU so resident memory stays bounded no matter
// how large the store grows.
package segstore

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"lockdoc/internal/db"
	"lockdoc/internal/manifest"
	"lockdoc/internal/trace"
)

// Manifest kind tokens for the two segment flavours.
const (
	KindTrace = "trace"
	KindState = "state"
)

const (
	segPrefix = "seg-"
	segSuffix = ".lkseg"

	// traceChunk is the raw-byte span of one compressed block inside a
	// trace segment. Chunk boundaries are invisible to readers — the
	// trace reader concatenates inflated blocks into one byte stream —
	// so the value only tunes compression granularity vs cache churn.
	traceChunk = 256 << 10

	// DefaultCacheBlocks bounds the decompressed-block LRU when
	// Options.CacheBlocks is zero.
	DefaultCacheBlocks = 64
)

// ErrClosed reports use of a store after Close.
var ErrClosed = errors.New("segstore: store closed")

// Options configures Open.
type Options struct {
	// FS overrides the file-operation surface (fault injection in
	// tests). nil means the real filesystem, which also enables mmap;
	// any other FS reads segments through FS.ReadFile instead.
	FS manifest.FS

	// CacheBlocks bounds the decompressed-block LRU, in blocks.
	// 0 means DefaultCacheBlocks.
	CacheBlocks int

	Metrics *Metrics
}

// Store is an on-disk segment store for one trace and its compacted
// state. All methods are safe for concurrent use, except that Close
// must not race in-flight reads or hydrations: the caller quiesces
// readers (and drops store-backed snapshots) first, because Close
// unmaps the segment pages they would touch.
type Store struct {
	dir  string
	fs   manifest.FS
	osfs bool // real filesystem: open segments via mmap
	m    *Metrics

	mu      sync.Mutex
	entries []manifest.Entry
	nextSeq uint64
	segs    map[string]*segment // opened segments by entry name
	retired []*segment          // superseded but possibly still referenced by snapshots
	dirty   bool                // manifest tail may hold a torn line from a failed append
	closed  bool

	cmu      sync.Mutex
	cacheCap int
	cache    map[blockKey]*list.Element
	lru      *list.List // of *cacheEnt, front = most recent
}

type blockKey struct {
	seg *segment
	idx int
}

type cacheEnt struct {
	key  blockKey
	data []byte
}

var (
	_ db.Compactor   = (*Store)(nil)
	_ db.GroupSource = (*stateSource)(nil)
)

func segName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	return seq, err == nil
}

// Open opens (creating if absent) the segment store in dir. Leftover
// temp files are removed, a torn manifest tail is repaired, and the
// valid manifest prefix up to the first entry that is not a
// well-formed segstore entry becomes the store's content. Segment
// files themselves are opened lazily, on first read.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	osfs := false
	if fsys == nil {
		fsys = manifest.OSFS{}
	}
	switch fsys.(type) {
	case manifest.OSFS, *manifest.OSFS:
		osfs = true
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("segstore: creating %s: %w", dir, err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("segstore: listing %s: %w", dir, err)
	}
	manifest.RemoveTemps(fsys, dir, names)
	manifest.Repair(fsys, dir)

	cap := opts.CacheBlocks
	if cap <= 0 {
		cap = DefaultCacheBlocks
	}
	s := &Store{
		dir:      dir,
		fs:       fsys,
		osfs:     osfs,
		m:        opts.Metrics,
		nextSeq:  1,
		segs:     make(map[string]*segment),
		cacheCap: cap,
		cache:    make(map[blockKey]*list.Element),
		lru:      list.New(),
	}
	for _, e := range manifest.Load(fsys, dir) {
		if (e.Kind != KindTrace && e.Kind != KindState) || e.Name != segName(e.Seq) {
			break // foreign or corrupt entry: keep the valid prefix only
		}
		s.entries = append(s.entries, e)
		if e.Seq >= s.nextSeq {
			s.nextSeq = e.Seq + 1
		}
	}
	// Orphan segment files (published but never recorded, or abandoned
	// by a crashed rewrite) must not have their names reused.
	for _, name := range names {
		if seq, ok := parseSegName(name); ok && seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Manifest returns a copy of the store's current manifest entries.
func (s *Store) Manifest() []manifest.Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]manifest.Entry(nil), s.entries...)
}

// HasState reports whether the store holds a compacted state segment.
func (s *Store) HasState() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.Kind == KindState {
			return true
		}
	}
	return false
}

// HasTrace reports whether the store holds any trace segments.
func (s *Store) HasTrace() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.Kind == KindTrace {
			return true
		}
	}
	return false
}

// Close unmaps and releases every opened segment, including retired
// ones still pinned by old snapshots — see the concurrency note on
// Store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.close(); err != nil && first == nil {
			first = err
		}
	}
	for _, seg := range s.retired {
		if err := seg.close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	s.retired = nil
	s.cmu.Lock()
	s.cache = nil
	s.lru = nil
	s.cmu.Unlock()
	return first
}

// stripTraceHeader accepts either headered v2 trace bytes or a bare
// sync-block continuation and returns the bare block bytes. v1 traces
// cannot be stored: their stream has no sync blocks to segment on.
func stripTraceHeader(raw []byte) ([]byte, error) {
	if trace.HasHeader(raw) {
		v, n := binary.Uvarint(raw[4:])
		if n <= 0 {
			return nil, errors.New("segstore: malformed trace header")
		}
		if v != trace.FormatV2 {
			return nil, fmt.Errorf("segstore: only v2 traces can be stored (got v%d)", v)
		}
		raw = raw[4+n:]
	}
	// 0xFF opens a v2 sync marker and is reserved as an event kind, so
	// any committed block range must start with it.
	if len(raw) > 0 && raw[0] != 0xFF {
		return nil, errors.New("segstore: trace bytes do not start at a sync-block boundary")
	}
	return raw, nil
}

func chunkTrace(payload []byte) [][]byte {
	var out [][]byte
	for off := 0; off < len(payload); off += traceChunk {
		end := off + traceChunk
		if end > len(payload) {
			end = len(payload)
		}
		out = append(out, payload[off:end])
	}
	return out
}

// repairLocked rewrites the manifest from the in-memory entry list
// after a failed append may have left a torn tail line.
func (s *Store) repairLocked() error {
	if !s.dirty {
		return nil
	}
	if err := manifest.Replace(s.fs, s.dir, s.entries); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// publishLocked compresses blocks into a new segment file and
// publishes it atomically (temp + fsync + rename). The manifest is NOT
// touched; the caller records the returned entry.
func (s *Store) publishLocked(kind string, kindByte byte, blocks [][]byte) (manifest.Entry, error) {
	w := newSegWriter(kindByte)
	for _, b := range blocks {
		if err := w.addBlock(b); err != nil {
			return manifest.Entry{}, fmt.Errorf("segstore: compressing segment: %w", err)
		}
	}
	data := w.bytes()
	seq := s.nextSeq
	name := segName(seq)
	if err := manifest.WriteFileAtomic(s.fs, s.dir, name, data); err != nil {
		return manifest.Entry{}, fmt.Errorf("segstore: writing %s: %w", name, err)
	}
	s.nextSeq++
	return manifest.Entry{
		Seq:  seq,
		Kind: kind,
		Name: name,
		Size: int64(len(data)),
		CRC:  crc32.ChecksumIEEE(data),
	}, nil
}

// retireLocked removes superseded entries' files. Segments already
// opened stay mapped until Close — an old snapshot may still hydrate
// from them (on unix the unlinked inode lives as long as the mapping).
func (s *Store) retireLocked(old []manifest.Entry) {
	for _, e := range old {
		if seg, ok := s.segs[e.Name]; ok {
			delete(s.segs, e.Name)
			s.retired = append(s.retired, seg)
		}
		_ = s.fs.Remove(filepath.Join(s.dir, e.Name))
	}
}

// ResetTrace replaces the store's content with the given trace — the
// full-load counterpart of AppendTrace. Any previous trace AND state
// segments are dropped: a new trace invalidates state compacted from
// the old one. raw may be a headered v2 trace or bare sync blocks.
func (s *Store) ResetTrace(raw []byte) error {
	payload, err := stripTraceHeader(raw)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.repairLocked(); err != nil {
		return fmt.Errorf("segstore: repairing manifest: %w", err)
	}
	var entries []manifest.Entry
	if len(payload) > 0 {
		e, err := s.publishLocked(KindTrace, kindByteTrace, chunkTrace(payload))
		if err != nil {
			return err
		}
		entries = append(entries, e)
	}
	if err := manifest.Replace(s.fs, s.dir, entries); err != nil {
		return fmt.Errorf("segstore: rewriting manifest: %w", err)
	}
	old := s.entries
	s.entries = entries
	s.retireLocked(old)
	if len(entries) > 0 {
		s.m.wrote(int(entries[0].Size))
	}
	return nil
}

// AppendTrace appends one trace segment holding raw (headered or bare;
// the header bytes of a commit starting at offset 0 are stripped). An
// empty payload is a no-op. On failure the store's content is
// unchanged — a torn manifest line is repaired before the next write,
// and at reopen by manifest.Repair.
func (s *Store) AppendTrace(raw []byte) error {
	payload, err := stripTraceHeader(raw)
	if err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.repairLocked(); err != nil {
		return fmt.Errorf("segstore: repairing manifest: %w", err)
	}
	e, err := s.publishLocked(KindTrace, kindByteTrace, chunkTrace(payload))
	if err != nil {
		return err
	}
	if err := manifest.AppendEntry(s.fs, s.dir, e); err != nil {
		// The manifest tail may now hold a torn line; the in-memory
		// entry list stays authoritative and the next write rewrites.
		s.dirty = true
		_ = s.fs.Remove(filepath.Join(s.dir, e.Name))
		return fmt.Errorf("segstore: recording %s: %w", e.Name, err)
	}
	s.entries = append(s.entries, e)
	s.m.wrote(int(e.Size))
	return nil
}

// CommitBlocks implements the trace follower's block sink: committed
// sync-block ranges become trace segments.
func (s *Store) CommitBlocks(raw []byte) error { return s.AppendTrace(raw) }

// Compact implements db.Compactor: it encodes the sealed view as one
// state segment (block 0 metadata, block i+1 group i) and atomically
// swaps it in for any previous state segments. Use db.DB.SealTo(store)
// to seal-and-compact in one step.
func (s *Store) Compact(view *db.DB) error {
	start := time.Now()
	groups := view.Groups()
	blocks := make([][]byte, 0, len(groups)+1)
	var meta bytes.Buffer
	if err := view.EncodeStateMeta(&meta); err != nil {
		return fmt.Errorf("segstore: encoding state: %w", err)
	}
	blocks = append(blocks, meta.Bytes())
	for _, g := range groups {
		// A view loaded from this (or another) store may hold stub
		// groups; materialize before encoding.
		if err := view.Hydrate(g); err != nil {
			return fmt.Errorf("segstore: hydrating group for compaction: %w", err)
		}
		var buf bytes.Buffer
		if err := view.EncodeGroupObs(&buf, g); err != nil {
			return fmt.Errorf("segstore: encoding group: %w", err)
		}
		blocks = append(blocks, buf.Bytes())
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.repairLocked(); err != nil {
		return fmt.Errorf("segstore: repairing manifest: %w", err)
	}
	e, err := s.publishLocked(KindState, kindByteState, blocks)
	if err != nil {
		return err
	}
	var keep []manifest.Entry
	var old []manifest.Entry
	for _, prev := range s.entries {
		if prev.Kind == KindState {
			old = append(old, prev)
		} else {
			keep = append(keep, prev)
		}
	}
	keep = append(keep, e)
	if err := manifest.Replace(s.fs, s.dir, keep); err != nil {
		_ = s.fs.Remove(filepath.Join(s.dir, e.Name))
		return fmt.Errorf("segstore: rewriting manifest: %w", err)
	}
	s.entries = keep
	s.retireLocked(old)
	s.m.compacted(start, int(e.Size))
	return nil
}

// segment returns the opened segment for entry e, opening (and fully
// verifying against the manifest's size and CRC) on first use.
func (s *Store) segment(e manifest.Entry) (*segment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if seg, ok := s.segs[e.Name]; ok {
		return seg, nil
	}
	var seg *segment
	var err error
	if s.osfs {
		seg, err = openSegmentFile(filepath.Join(s.dir, e.Name), e.Name)
	} else {
		var data []byte
		data, err = s.fs.ReadFile(filepath.Join(s.dir, e.Name))
		if err == nil {
			seg, err = parseSegment(e.Name, data)
		}
	}
	if err != nil {
		s.m.invalid()
		return nil, err
	}
	if int64(len(seg.data)) != e.Size || seg.checksum() != e.CRC {
		_ = seg.close()
		s.m.invalid()
		return nil, fmt.Errorf("%w: %s: does not match manifest (size %d crc %08x, want %d %08x)",
			ErrBadSegment, e.Name, len(seg.data), crc32.ChecksumIEEE(seg.data), e.Size, e.CRC)
	}
	if (e.Kind == KindTrace) != (seg.kind == kindByteTrace) {
		_ = seg.close()
		s.m.invalid()
		return nil, fmt.Errorf("%w: %s: segment kind disagrees with manifest kind %s", ErrBadSegment, e.Name, e.Kind)
	}
	s.segs[e.Name] = seg
	s.m.opened()
	return seg, nil
}

// blockData returns block i of seg decompressed, through the LRU.
func (s *Store) blockData(seg *segment, i int) ([]byte, error) {
	if i < 0 || i >= len(seg.blocks) {
		return nil, fmt.Errorf("%w: %s: no block %d", ErrBadSegment, seg.name, i)
	}
	key := blockKey{seg: seg, idx: i}
	s.cmu.Lock()
	if s.cache == nil {
		s.cmu.Unlock()
		return nil, ErrClosed
	}
	if el, ok := s.cache[key]; ok {
		s.lru.MoveToFront(el)
		data := el.Value.(*cacheEnt).data
		s.cmu.Unlock()
		s.m.cacheHit()
		return data, nil
	}
	s.cmu.Unlock()

	// Inflate outside the cache lock; concurrent misses on the same
	// block may duplicate work, which is harmless.
	raw, err := seg.inflateBlock(i)
	if err != nil {
		return nil, err
	}
	s.m.inflated()

	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.cache == nil {
		return raw, nil
	}
	if el, ok := s.cache[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*cacheEnt).data, nil
	}
	s.cache[key] = s.lru.PushFront(&cacheEnt{key: key, data: raw})
	for s.lru.Len() > s.cacheCap {
		back := s.lru.Back()
		ent := back.Value.(*cacheEnt)
		s.lru.Remove(back)
		delete(s.cache, ent.key)
		s.m.evicted()
	}
	return raw, nil
}

// stateSource binds a loaded snapshot to the state segment it came
// from; it implements db.GroupSource for lazy group materialization.
type stateSource struct {
	s   *Store
	seg *segment
}

func (src *stateSource) HydrateGroup(idx int, g *db.ObsGroup) error {
	data, err := src.s.blockData(src.seg, idx+1)
	if err != nil {
		return err
	}
	return db.DecodeGroupObs(bytes.NewReader(data), g)
}

// LoadState decodes the newest usable state segment into a sealed
// snapshot whose observation groups hydrate lazily from this store.
// Damaged candidates are skipped in favour of older ones; (nil, false,
// nil) means no usable state exists and the caller should fall back to
// replaying the trace.
func (s *Store) LoadState() (*db.DB, bool, error) {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	var candidates []manifest.Entry
	for _, e := range s.entries {
		if e.Kind == KindState {
			candidates = append(candidates, e)
		}
	}
	s.mu.Unlock()

	for i := len(candidates) - 1; i >= 0; i-- {
		seg, err := s.segment(candidates[i])
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, false, err
			}
			continue // damaged or missing: try the previous generation
		}
		meta, err := s.blockData(seg, 0)
		if err != nil {
			s.m.invalid()
			continue
		}
		d, err := db.DecodeStateMeta(bytes.NewReader(meta), &stateSource{s: s, seg: seg})
		if err != nil {
			s.m.invalid()
			continue
		}
		s.m.loaded(start)
		return d, true, nil
	}
	return nil, false, nil
}

// DropCache empties the decompressed-block cache without closing the
// store: mapped segments stay readable and the next hydration simply
// re-inflates. lockdocd calls it when a namespace is evicted under
// memory pressure — the mmap itself costs no heap, the inflated
// blocks do. Safe against concurrent reads; a no-op on a closed store.
func (s *Store) DropCache() {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.cache == nil {
		return
	}
	for range s.cache {
		s.m.evicted()
	}
	s.cache = make(map[blockKey]*list.Element)
	s.lru.Init()
}

// TraceReader streams the store's trace — bare v2 sync blocks, ready
// for trace.NewContinuationReader — concatenated across trace segments
// in order. A damaged or missing segment truncates the stream at the
// last valid point, mirroring how a torn trace file loads: the valid
// prefix survives. Decompression is streamed block by block and
// bypasses the LRU so a full replay does not evict hot state blocks.
func (s *Store) TraceReader() io.Reader {
	s.mu.Lock()
	var entries []manifest.Entry
	for _, e := range s.entries {
		if e.Kind == KindTrace {
			entries = append(entries, e)
		}
	}
	s.mu.Unlock()

	var segs []*segment
	for _, e := range entries {
		seg, err := s.segment(e)
		if err != nil {
			break // truncate the chain at the first damaged segment
		}
		segs = append(segs, seg)
	}
	return &traceReader{s: s, segs: segs}
}

type traceReader struct {
	s    *Store
	segs []*segment
	segi int
	blki int
	cur  []byte
}

func (r *traceReader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if r.segi >= len(r.segs) {
			return 0, io.EOF
		}
		seg := r.segs[r.segi]
		if r.blki >= len(seg.blocks) {
			r.segi++
			r.blki = 0
			continue
		}
		raw, err := seg.inflateBlock(r.blki)
		if err != nil {
			return 0, err
		}
		r.s.m.inflated()
		r.blki++
		r.cur = raw
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}
