//go:build !unix

package segstore

import (
	"errors"
	"os"
)

// mapFile is unavailable off unix; openSegment falls back to reading
// the file into memory.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	return nil, nil, errors.New("segstore: mmap not supported on this platform")
}
