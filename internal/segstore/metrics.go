package segstore

import (
	"time"

	"lockdoc/internal/obs"
)

// Metrics is the segment-store instrument set: segment lifecycle,
// compaction latency, and the decompressed-block cache's hit/evict
// behaviour. Attach one via Options.Metrics; a nil *Metrics keeps
// every hook a no-op.
type Metrics struct {
	SegmentsOpened  *obs.Counter
	SegmentsInvalid *obs.Counter
	Compactions     *obs.Counter
	CompactSeconds  *obs.Histogram
	LoadSeconds     *obs.Histogram
	BytesWritten    *obs.Counter
	BlocksInflated  *obs.Counter
	BlockCacheHits  *obs.Counter
	BlocksEvicted   *obs.Counter
}

// NewMetrics registers the segstore instrument set on reg (nil reg,
// nil metrics).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		SegmentsOpened:  reg.Counter("lockdoc_segstore_segments_opened_total", "segment files opened and mapped"),
		SegmentsInvalid: reg.Counter("lockdoc_segstore_segments_invalid_total", "segments rejected as missing, short, or corrupt"),
		Compactions:     reg.Counter("lockdoc_segstore_compactions_total", "sealed views compacted into state segments"),
		CompactSeconds:  reg.Histogram("lockdoc_segstore_compact_seconds", "CompactState call latency", nil),
		LoadSeconds:     reg.Histogram("lockdoc_segstore_load_seconds", "LoadState call latency", nil),
		BytesWritten:    reg.Counter("lockdoc_segstore_bytes_written_total", "compressed segment bytes published"),
		BlocksInflated:  reg.Counter("lockdoc_segstore_blocks_inflated_total", "segment blocks decompressed"),
		BlockCacheHits:  reg.Counter("lockdoc_segstore_block_cache_hits_total", "block reads served from the decompressed-block cache"),
		BlocksEvicted:   reg.Counter("lockdoc_segstore_blocks_evicted_total", "decompressed blocks evicted from the cache"),
	}
}

func (m *Metrics) opened() {
	if m != nil {
		m.SegmentsOpened.Inc()
	}
}

func (m *Metrics) invalid() {
	if m != nil {
		m.SegmentsInvalid.Inc()
	}
}

func (m *Metrics) compacted(start time.Time, bytes int) {
	if m != nil {
		m.Compactions.Inc()
		m.CompactSeconds.ObserveSince(start)
		m.BytesWritten.Add(uint64(bytes))
	}
}

func (m *Metrics) wrote(bytes int) {
	if m != nil {
		m.BytesWritten.Add(uint64(bytes))
	}
}

func (m *Metrics) loaded(start time.Time) {
	if m != nil {
		m.LoadSeconds.ObserveSince(start)
	}
}

func (m *Metrics) inflated() {
	if m != nil {
		m.BlocksInflated.Inc()
	}
}

func (m *Metrics) cacheHit() {
	if m != nil {
		m.BlockCacheHits.Inc()
	}
}

func (m *Metrics) evicted() {
	if m != nil {
		m.BlocksEvicted.Inc()
	}
}
