//go:build unix

package segstore

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the file read-only. The mapping stays valid even after
// the file is unlinked (POSIX keeps the inode alive until the last
// mapping goes), which is what lets the store retire superseded state
// segments while old snapshots may still hydrate from them.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("segstore: segment too large to map (%d bytes)", size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
