package segstore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Segment file layout (see DESIGN.md §13):
//
//	magic "LKSG" | version byte (1) | kind byte | block...
//	block := rawLen uvarint | compLen uvarint | crc32(comp) LE 4B | comp
//
// comp is a DEFLATE (compress/flate) stream inflating to exactly rawLen
// bytes; the CRC covers the compressed bytes so corruption is caught
// before the inflater ever sees them. The header walk at open needs
// only the varint prefixes, so opening a segment touches a few pages
// per block and never decompresses anything.
const (
	segMagic   = "LKSG"
	segVersion = 1

	kindByteTrace = 1
	kindByteState = 2

	// maxSegBlock bounds a single block's raw size; trace blocks are
	// bounded by the chunker and state blocks by the db codec's own
	// limits, so this is a corruption backstop, not a real ceiling.
	maxSegBlock = 1 << 28
)

// ErrBadSegment reports a structurally invalid or corrupt segment file.
var ErrBadSegment = errors.New("segstore: bad segment")

// segWriter accumulates one segment in memory. Segments are bounded by
// what one ingest commit or one sealed snapshot produces, so building
// them in memory before the atomic publish keeps the write path simple.
type segWriter struct {
	buf bytes.Buffer
	fw  *flate.Writer
	tmp [binary.MaxVarintLen64]byte
}

func newSegWriter(kindByte byte) *segWriter {
	w := &segWriter{}
	w.buf.WriteString(segMagic)
	w.buf.WriteByte(segVersion)
	w.buf.WriteByte(kindByte)
	return w
}

// addBlock compresses raw and appends it as one block.
func (w *segWriter) addBlock(raw []byte) error {
	var comp bytes.Buffer
	if w.fw == nil {
		fw, err := flate.NewWriter(&comp, flate.DefaultCompression)
		if err != nil {
			return err
		}
		w.fw = fw
	} else {
		w.fw.Reset(&comp)
	}
	if _, err := w.fw.Write(raw); err != nil {
		return err
	}
	if err := w.fw.Close(); err != nil {
		return err
	}
	n := binary.PutUvarint(w.tmp[:], uint64(len(raw)))
	w.buf.Write(w.tmp[:n])
	n = binary.PutUvarint(w.tmp[:], uint64(comp.Len()))
	w.buf.Write(w.tmp[:n])
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(comp.Bytes()))
	w.buf.Write(crc[:])
	w.buf.Write(comp.Bytes())
	return nil
}

func (w *segWriter) bytes() []byte { return w.buf.Bytes() }

// blockMeta locates one compressed block inside a mapped segment.
type blockMeta struct {
	off  int // offset of comp bytes in segment.data
	comp int
	raw  int
	crc  uint32
}

// segment is an opened, mapped (or slurped) segment file.
type segment struct {
	name   string
	kind   byte
	data   []byte
	unmap  func() error
	blocks []blockMeta
}

// openSegmentFile maps path and walks its block headers. Any structural
// problem — short header, bad magic, truncated block — fails the whole
// segment; per-block payload corruption is only detectable later, at
// decompression, via the block CRC.
func openSegmentFile(path, name string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapFile(f, fi.Size())
	if err != nil {
		// No mmap (or mapping failed): fall back to an in-memory copy.
		data, err = io.ReadAll(io.NewSectionReader(f, 0, fi.Size()))
		if err != nil {
			return nil, err
		}
		unmap = func() error { return nil }
	}
	seg, err := parseSegment(name, data)
	if err != nil {
		_ = unmap()
		return nil, err
	}
	seg.unmap = unmap
	return seg, nil
}

func parseSegment(name string, data []byte) (*segment, error) {
	if len(data) < len(segMagic)+2 || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("%w: %s: missing segment header", ErrBadSegment, name)
	}
	if data[len(segMagic)] != segVersion {
		return nil, fmt.Errorf("%w: %s: unsupported segment version %d", ErrBadSegment, name, data[len(segMagic)])
	}
	kind := data[len(segMagic)+1]
	if kind != kindByteTrace && kind != kindByteState {
		return nil, fmt.Errorf("%w: %s: unknown segment kind %d", ErrBadSegment, name, kind)
	}
	seg := &segment{name: name, kind: kind, data: data}
	off := len(segMagic) + 2
	for off < len(data) {
		rawLen, n := binary.Uvarint(data[off:])
		if n <= 0 || rawLen > maxSegBlock {
			return nil, fmt.Errorf("%w: %s: bad block raw length at offset %d", ErrBadSegment, name, off)
		}
		off += n
		compLen, n := binary.Uvarint(data[off:])
		if n <= 0 || compLen > maxSegBlock {
			return nil, fmt.Errorf("%w: %s: bad block comp length at offset %d", ErrBadSegment, name, off)
		}
		off += n
		if len(data)-off < 4+int(compLen) {
			return nil, fmt.Errorf("%w: %s: truncated block at offset %d", ErrBadSegment, name, off)
		}
		crc := binary.LittleEndian.Uint32(data[off : off+4])
		off += 4
		seg.blocks = append(seg.blocks, blockMeta{off: off, comp: int(compLen), raw: int(rawLen), crc: crc})
		off += int(compLen)
	}
	return seg, nil
}

// inflateBlock verifies the block CRC and decompresses it into a fresh
// slice (never aliasing the mapping, so callers may hold the result
// past segment retirement).
func (s *segment) inflateBlock(i int) ([]byte, error) {
	b := s.blocks[i]
	comp := s.data[b.off : b.off+b.comp]
	if crc32.ChecksumIEEE(comp) != b.crc {
		return nil, fmt.Errorf("%w: %s: block %d CRC mismatch", ErrBadSegment, s.name, i)
	}
	fr := flate.NewReader(bytes.NewReader(comp))
	raw := make([]byte, 0, b.raw)
	buf := bytes.NewBuffer(raw)
	if n, err := io.Copy(buf, io.LimitReader(fr, int64(b.raw)+1)); err != nil {
		return nil, fmt.Errorf("%w: %s: block %d: %v", ErrBadSegment, s.name, i, err)
	} else if int(n) != b.raw {
		return nil, fmt.Errorf("%w: %s: block %d inflated to %d bytes, want %d", ErrBadSegment, s.name, i, n, b.raw)
	}
	_ = fr.Close()
	return buf.Bytes(), nil
}

// checksum computes the CRC32-IEEE of the whole file, the value the
// manifest entry pins.
func (s *segment) checksum() uint32 { return crc32.ChecksumIEEE(s.data) }

func (s *segment) close() error {
	if s.unmap == nil {
		return nil
	}
	err := s.unmap()
	s.unmap = nil
	s.data = nil
	return err
}
