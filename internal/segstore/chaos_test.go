package segstore

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"lockdoc/internal/faultinject"
	"lockdoc/internal/manifest"
)

// TestChaosSoak drives cycles of trace appends, state compactions and
// occasional full resets against a store whose filesystem randomly
// tears segment writes, cuts manifest appends mid-line, loses renames
// and fails flakily, with the process "crashing" (Close + reopen from
// the directory) at random points. The invariant: the store always
// replays exactly the acknowledged trace bytes — a rejected operation
// leaves no residue, before or after a crash — and reopen loads exactly
// the last acknowledged compacted state, or none if compaction was
// never acknowledged. The RNG is seeded so a failing run replays.
//
// Unlike the server (which wraps durability writes in a retry policy),
// the store itself has none, so even transient injected faults are
// expected to fail the operation; what matters is that the failure is
// clean.
func TestChaosSoak(t *testing.T) {
	const cycles = 60
	const seed = 20260807
	rng := rand.New(rand.NewSource(seed))
	t.Logf("segstore chaos soak: %d cycles, seed %d", cycles, seed)

	raw := buildRaw(t, 600)
	head, rest := splitAtSync(t, raw, 2)

	// Cut the remainder into chunks of 1-4 sync blocks. Chunks are
	// contiguous slices of raw, so the acknowledged byte string is
	// always a prefix of raw and decodes with the plain reader.
	var marks []int
	for from := 1; ; {
		i := bytes.Index(rest[from:], syncNeedle)
		if i < 0 {
			break
		}
		from += i + 1
		marks = append(marks, from-1)
	}
	marks = append(marks, len(rest))
	var chunks [][]byte
	for start, mi := 0, 0; start < len(rest); {
		mi += 1 + rng.Intn(4)
		if mi >= len(marks) {
			mi = len(marks) - 1
		}
		chunks = append(chunks, rest[start:marks[mi]])
		start = marks[mi]
	}
	if len(chunks) < 4 {
		t.Fatalf("fixture cut into %d chunks, want >= 4", len(chunks))
	}

	dir := t.TempDir()
	ffs := faultinject.NewFaultFS(manifest.OSFS{})
	open := func() *Store {
		s, err := Open(dir, Options{FS: ffs, CacheBlocks: 4})
		if err != nil {
			t.Fatalf("opening store: %v", err)
		}
		return s
	}
	s := open()

	acked := append([]byte(nil), head...) // acknowledged trace bytes
	var ackedCSV []byte                   // observations of the last acknowledged Compact
	next := 0                             // next chunk to append

	if err := s.ResetTrace(head); err != nil {
		t.Fatalf("seed reset: %v", err)
	}

	verifyTrace := func(cycle int, s *Store) {
		t.Helper()
		want := decodeAll(t, acked)
		got := storeEvents(t, s)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("cycle %d: store replays %d events, acknowledged state has %d",
				cycle, len(got), len(want))
		}
	}

	crashAndReopen := func(cycle int) {
		t.Helper()
		// The process dies: nothing survives but the directory. The
		// reboot also clears any in-flight disk faults.
		ffs.Clear()
		if err := s.Close(); err != nil {
			t.Fatalf("cycle %d: close: %v", cycle, err)
		}
		s = open()
		verifyTrace(cycle, s)
		d, ok, err := s.LoadState()
		if err != nil {
			t.Fatalf("cycle %d: LoadState: %v", cycle, err)
		}
		if ok && ackedCSV == nil {
			t.Fatalf("cycle %d: reopen loaded state that was never acknowledged", cycle)
		}
		if !ok && ackedCSV != nil {
			t.Fatalf("cycle %d: acknowledged compacted state lost", cycle)
		}
		if ok {
			if got := exportCSV(t, d); !bytes.Equal(got, ackedCSV) {
				t.Fatalf("cycle %d: reopened state differs from the acknowledged compaction", cycle)
			}
		}
	}

	for i := 0; i < cycles; i++ {
		// Arm at most one disk fault for the cycle; counters restart at
		// zero each cycle, so after=0 targets the first matching op.
		ffs.Clear()
		switch rng.Intn(6) {
		case 0: // healthy disk
		case 1:
			ffs.TornWrite(0, rng.Float64()) // segment temp file torn mid-write
		case 2:
			ffs.TornAppend(0, rng.Float64()) // manifest line cut mid-append
		case 3:
			ffs.PartialRename(0) // crash between temp write and publish
		case 4:
			ffs.FailN(faultinject.OpWrite, 0, 2, true) // flaky disk
		case 5:
			ffs.FailN(faultinject.OpWrite, 0, 10, false) // dead disk
		}

		switch {
		case i%17 == 16: // full reset back to the head
			if err := s.ResetTrace(head); err == nil {
				acked = append(acked[:0:0], head...)
				ackedCSV = nil
				next = 0
			}
		case rng.Intn(2) == 0 && next < len(chunks): // append one chunk
			if err := s.AppendTrace(chunks[next]); err == nil {
				acked = append(acked, chunks[next]...)
				next++
			}
		default: // compact the acknowledged view
			d := importRaw(t, acked)
			csv := exportCSV(t, d)
			if err := s.Compact(d); err == nil {
				ackedCSV = csv
			}
		}

		// Fault or no fault, the store on disk now holds exactly the
		// acknowledged bytes (reads are healthy again from here).
		ffs.Clear()
		verifyTrace(i, s)

		if rng.Intn(4) == 0 {
			crashAndReopen(i)
		}
	}
	// Whatever the last cycle left behind, a final crash must still
	// reopen to the acknowledged state exactly.
	crashAndReopen(cycles)
	_ = s.Close()
}
