package segstore

import (
	"bytes"
	"testing"
)

// FuzzSegmentRoundTrip throws arbitrary bytes at the segment parser.
// Properties: parseSegment and inflateBlock never panic on any input,
// and any segment that parses and inflates cleanly survives a rebuild —
// re-compressing the recovered blocks yields a segment with identical
// logical content.
func FuzzSegmentRoundTrip(f *testing.F) {
	seed := func(blocks ...[]byte) []byte {
		w := newSegWriter(kindByteTrace)
		for _, b := range blocks {
			if err := w.addBlock(b); err != nil {
				f.Fatal(err)
			}
		}
		return w.bytes()
	}
	valid := seed([]byte("hello segment"), bytes.Repeat([]byte{0xAB, 0x00, 0xFF}, 400))
	f.Add(valid)
	f.Add(seed()) // header only
	f.Add([]byte{})
	f.Add([]byte("LKSG"))
	f.Add([]byte("LKSG\x01\x01"))
	truncated := valid[:len(valid)-5]
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := parseSegment("fuzz", data)
		if err != nil {
			return
		}
		// Bound the inflate work: block headers may claim huge raw
		// sizes (up to maxSegBlock) that inflateBlock would allocate.
		total := 0
		for _, b := range seg.blocks {
			total += b.raw
		}
		if total > 1<<24 {
			return
		}
		var blocks [][]byte
		for i := range seg.blocks {
			b, err := seg.inflateBlock(i)
			if err != nil {
				return // corrupt payload: detected, not a crash
			}
			blocks = append(blocks, b)
		}
		// Round trip: rebuilding from the recovered blocks must give a
		// parseable segment with the same content.
		w := newSegWriter(seg.kind)
		for _, b := range blocks {
			if err := w.addBlock(b); err != nil {
				t.Fatalf("rebuilding block: %v", err)
			}
		}
		seg2, err := parseSegment("rebuilt", w.bytes())
		if err != nil {
			t.Fatalf("rebuilt segment does not parse: %v", err)
		}
		if len(seg2.blocks) != len(blocks) {
			t.Fatalf("rebuilt segment has %d blocks, want %d", len(seg2.blocks), len(blocks))
		}
		for i := range blocks {
			got, err := seg2.inflateBlock(i)
			if err != nil {
				t.Fatalf("rebuilt block %d: %v", i, err)
			}
			if !bytes.Equal(got, blocks[i]) {
				t.Fatalf("rebuilt block %d differs", i)
			}
		}
	})
}
