package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"lockdoc/internal/core"
)

func TestWriteRulesJSON(t *testing.T) {
	d := fixture(t)
	results, _ := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	var buf bytes.Buffer
	if err := WriteRulesJSON(&buf, d, results, true); err != nil {
		t.Fatal(err)
	}
	var rules []RuleJSON
	if err := json.Unmarshal(buf.Bytes(), &rules); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules exported")
	}
	foundIState := false
	for _, r := range rules {
		if r.Type == "inode" && r.Member == "i_state" && r.Access == "w" {
			foundIState = true
			if r.Rule != "ES(i_lock in inode)" {
				t.Errorf("i_state rule = %q", r.Rule)
			}
			if r.Sr != 1.0 || r.Sa == 0 {
				t.Errorf("i_state support = %d/%f", r.Sa, r.Sr)
			}
			if len(r.Hypotheses) == 0 {
				t.Error("hypotheses not embedded")
			}
		}
	}
	if !foundIState {
		t.Error("i_state rule missing from export")
	}
}

func TestWriteChecksJSON(t *testing.T) {
	d := fixture(t)
	results, err := CheckAll(d, []RuleSpec{
		{Type: "inode", Subclass: "ext4", Member: "i_state", Write: true,
			Locks: []string{"ES(inode.i_lock)"}, Source: "fs.h:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChecksJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var checks []CheckJSON
	if err := json.Unmarshal(buf.Bytes(), &checks); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(checks) != 1 || checks[0].Verdict != "correct" || checks[0].Source != "fs.h:1" {
		t.Errorf("checks = %+v", checks)
	}
}

func TestWriteViolationsJSON(t *testing.T) {
	d := fixture(t)
	results, _ := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	viols := FindViolations(d, results)
	var buf bytes.Buffer
	if err := WriteViolationsJSON(&buf, Examples(d, viols, 10)); err != nil {
		t.Fatal(err)
	}
	var exs []ViolationJSON
	if err := json.Unmarshal(buf.Bytes(), &exs); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(exs) == 0 {
		t.Fatal("no violations exported")
	}
	if exs[0].Location == "" || exs[0].Rule == "" {
		t.Errorf("incomplete violation: %+v", exs[0])
	}
}
