package analysis

import (
	"encoding/csv"
	"io"
	"sort"
	"strconv"

	"lockdoc/internal/core"
	"lockdoc/internal/db"
)

// Violation records all accesses to one member that ran under one
// held-lock sequence which does not comply with the member's winning
// locking rule (Sec. 7.5).
type Violation struct {
	Group  *db.ObsGroup
	Rule   db.LockSeq // the winning (violated) rule
	Held   db.LockSeq // what was actually held
	Count  uint64     // folded observations
	Events uint64     // raw memory-access events
	// Contexts counts events per distinct (function, stack) context.
	Contexts map[db.AccessCtx]uint64
}

// FindViolations scans derivation results for observations violating the
// winning rule. Rules with full support (s_r = 1) cannot be violated;
// the "no lock" rule is satisfied by every access.
func FindViolations(d *db.DB, results []core.Result) []Violation {
	var out []Violation
	for _, res := range results {
		if res.Winner == nil || res.Winner.NoLock() || res.Winner.Sr >= 1.0 {
			continue
		}
		for _, so := range res.Group.Seqs {
			if compliesWith(res.Winner.Seq, so.Seq) {
				continue
			}
			out = append(out, Violation{
				Group: res.Group, Rule: res.Winner.Seq, Held: so.Seq,
				Count: so.Count, Events: so.Events, Contexts: so.Contexts,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Group.TypeLabel() != b.Group.TypeLabel() {
			return a.Group.TypeLabel() < b.Group.TypeLabel()
		}
		if a.Group.MemberName() != b.Group.MemberName() {
			return a.Group.MemberName() < b.Group.MemberName()
		}
		return a.Events > b.Events
	})
	return out
}

func compliesWith(rule, held db.LockSeq) bool {
	if len(rule) == 0 {
		return true
	}
	j := 0
	for _, x := range held {
		if x == rule[j] {
			j++
			if j == len(rule) {
				return true
			}
		}
	}
	return false
}

// ViolationSummary is one row of Tab. 7: violating events, distinct
// members and distinct contexts per data type.
type ViolationSummary struct {
	TypeLabel string
	Events    uint64
	Members   int
	Contexts  int
}

// SummarizeViolations aggregates violations per type label. Labels with
// observations but no violations appear with zero counts, matching the
// all-zero rows of Tab. 7.
func SummarizeViolations(d *db.DB, violations []Violation) []ViolationSummary {
	type agg struct {
		events   uint64
		members  map[string]bool
		contexts map[db.AccessCtx]bool
	}
	accs := make(map[string]*agg)
	for _, label := range d.TypeLabels() {
		accs[label] = &agg{members: map[string]bool{}, contexts: map[db.AccessCtx]bool{}}
	}
	for _, v := range violations {
		a := accs[v.Group.TypeLabel()]
		if a == nil {
			a = &agg{members: map[string]bool{}, contexts: map[db.AccessCtx]bool{}}
			accs[v.Group.TypeLabel()] = a
		}
		a.events += v.Events
		a.members[v.Group.MemberName()] = true
		for c := range v.Contexts {
			a.contexts[c] = true
		}
	}
	labels := make([]string, 0, len(accs))
	for l := range accs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]ViolationSummary, 0, len(labels))
	for _, l := range labels {
		a := accs[l]
		out = append(out, ViolationSummary{
			TypeLabel: l, Events: a.events,
			Members: len(a.members), Contexts: len(a.contexts),
		})
	}
	return out
}

// ViolationExample is one row of Tab. 8: a concrete violating access
// with enough context to start debugging.
type ViolationExample struct {
	TypeMember string // "inode:ext4.i_hash"
	Rule       string // the violated rule
	Held       string // locks actually held
	Location   string // file:line of the innermost function
	Stack      string // call chain
	Events     uint64
}

// WriteCounterexamplesCSV exports every violating observation as CSV —
// the paper's counterexample-extraction step (Sec. 7.2 reports it as
// the single most expensive query, 172 minutes on MariaDB; here it is a
// linear pass). Columns: type label, member, access type, mined rule,
// held locks, location, stack, events.
func WriteCounterexamplesCSV(w io.Writer, d *db.DB, violations []Violation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"type", "member", "access", "rule", "held", "location", "stack", "events",
	}); err != nil {
		return err
	}
	for _, v := range violations {
		ctxs := make([]db.AccessCtx, 0, len(v.Contexts))
		for c := range v.Contexts {
			ctxs = append(ctxs, c)
		}
		sort.Slice(ctxs, func(i, j int) bool {
			if ctxs[i].FuncID != ctxs[j].FuncID {
				return ctxs[i].FuncID < ctxs[j].FuncID
			}
			return ctxs[i].StackID < ctxs[j].StackID
		})
		for _, c := range ctxs {
			err := cw.Write([]string{
				v.Group.TypeLabel(), v.Group.MemberName(), v.Group.AccessType(),
				d.SeqString(v.Rule), d.SeqString(v.Held),
				d.FuncLocation(c.FuncID), d.StackTrace(c.StackID),
				strconv.FormatUint(v.Contexts[c], 10),
			})
			if err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Examples renders the top violating contexts, at most max rows, ordered
// by descending event count.
func Examples(d *db.DB, violations []Violation, max int) []ViolationExample {
	type flat struct {
		v      Violation
		ctx    db.AccessCtx
		events uint64
	}
	var all []flat
	for _, v := range violations {
		for c, n := range v.Contexts {
			all = append(all, flat{v: v, ctx: c, events: n})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].events != all[j].events {
			return all[i].events > all[j].events
		}
		if all[i].v.Group.TypeLabel() != all[j].v.Group.TypeLabel() {
			return all[i].v.Group.TypeLabel() < all[j].v.Group.TypeLabel()
		}
		return all[i].ctx.FuncID < all[j].ctx.FuncID
	})
	if max > 0 && len(all) > max {
		all = all[:max]
	}
	out := make([]ViolationExample, 0, len(all))
	for _, f := range all {
		out = append(out, ViolationExample{
			TypeMember: f.v.Group.TypeLabel() + "." + f.v.Group.MemberName(),
			Rule:       d.SeqString(f.v.Rule),
			Held:       d.SeqString(f.v.Held),
			Location:   d.FuncLocation(f.ctx.FuncID),
			Stack:      d.StackTrace(f.ctx.StackID),
			Events:     f.events,
		})
	}
	return out
}
