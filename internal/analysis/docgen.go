package analysis

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"lockdoc/internal/core"
	"lockdoc/internal/db"
)

// MiningSummary is one row of Tab. 6: mined locking rules for one data
// type (or inode subclass).
type MiningSummary struct {
	TypeLabel   string
	Members     int // #M — members of the type
	Blacklisted int // #Bl — filtered members (atomic, lock, black-listed)
	RulesRead   int // #Rules (r)
	RulesWrite  int // #Rules (w)
	NoLockRead  int // #Nl (r)
	NoLockWrite int // #Nl (w)
}

// SummarizeMining aggregates derivation results per type label.
func SummarizeMining(d *db.DB, results []core.Result) []MiningSummary {
	index := make(map[string]int)
	var out []MiningSummary
	for _, res := range results {
		if res.Group == nil || res.Total == 0 || res.Winner == nil {
			continue
		}
		label := res.Group.TypeLabel()
		i, ok := index[label]
		if !ok {
			i = len(out)
			index[label] = i
			ms := MiningSummary{TypeLabel: label, Members: len(res.Group.Type.Members)}
			ms.Blacklisted = d.BlacklistedMembers(res.Group.Type)
			out = append(out, ms)
		}
		s := &out[i]
		if res.Group.Key.Write {
			s.RulesWrite++
			if res.Winner.NoLock() {
				s.NoLockWrite++
			}
		} else {
			s.RulesRead++
			if res.Winner.NoLock() {
				s.NoLockRead++
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TypeLabel < out[j].TypeLabel })
	return out
}

// NoLockFraction computes, for every type label and access type, the
// fraction of observed members whose winning hypothesis is "no lock"
// at acceptance threshold tac — one point of Fig. 7. Cancelling ctx
// aborts the underlying derivation at the next group boundary.
func NoLockFraction(ctx context.Context, d *db.DB, tac float64) (map[string]map[string]float64, error) {
	results, err := core.DeriveAll(ctx, d, core.Options{AcceptThreshold: tac})
	if err != nil {
		return nil, err
	}
	type counts struct{ noLock, total int }
	acc := make(map[string]map[string]*counts)
	for _, res := range results {
		if res.Total == 0 || res.Winner == nil {
			continue
		}
		label := res.Group.TypeLabel()
		at := res.Group.AccessType()
		if acc[label] == nil {
			acc[label] = map[string]*counts{"r": {}, "w": {}}
		}
		c := acc[label][at]
		c.total++
		if res.Winner.NoLock() {
			c.noLock++
		}
	}
	out := make(map[string]map[string]float64, len(acc))
	for label, m := range acc {
		out[label] = make(map[string]float64, 2)
		for at, c := range m {
			if c.total > 0 {
				out[label][at] = 100 * float64(c.noLock) / float64(c.total)
			}
		}
	}
	return out, nil
}

// SweepPoint is one sample of the Fig. 7 threshold sweep.
type SweepPoint struct {
	Threshold float64
	// Fractions maps type label -> access type ("r"/"w") -> percentage
	// of "no lock" winners.
	Fractions map[string]map[string]float64
}

// ThresholdSweep evaluates NoLockFraction over a range of acceptance
// thresholds (Fig. 7 uses 0.70..1.00). Cancelling ctx stops the sweep
// at the next group boundary of the derivation in flight.
func ThresholdSweep(ctx context.Context, d *db.DB, from, to, step float64) ([]SweepPoint, error) {
	var out []SweepPoint
	// Index-based stepping: naive accumulation drifts above `to` and a
	// threshold of 1.0000000000000002 would reject even fully-supported
	// hypotheses.
	n := int((to-from)/step + 0.5)
	for i := 0; i <= n; i++ {
		tac := from + float64(i)*step
		if tac > to {
			tac = to
		}
		fr, err := NoLockFraction(ctx, d, tac)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{Threshold: tac, Fractions: fr})
	}
	return out, nil
}

// GenerateDoc renders the mined rules of one type label as a kernel-style
// locking-documentation comment (Fig. 8). Only members whose winning
// hypothesis exists are listed; members sharing a rule are grouped.
func GenerateDoc(d *db.DB, results []core.Result, typeLabel string) string {
	// rule string -> member names (annotated with r/w when the rules
	// for the two access types differ).
	byRule := make(map[string][]string)
	perMember := make(map[string]map[string]string) // member -> accessType -> rule
	for _, res := range results {
		if res.Winner == nil || res.Group.TypeLabel() != typeLabel {
			continue
		}
		m := res.Group.MemberName()
		if perMember[m] == nil {
			perMember[m] = make(map[string]string, 2)
		}
		perMember[m][res.Group.AccessType()] = d.SeqString(res.Winner.Seq)
	}
	members := make([]string, 0, len(perMember))
	for m := range perMember {
		members = append(members, m)
	}
	sort.Strings(members)
	for _, m := range members {
		rules := perMember[m]
		r, hasR := rules["r"]
		w, hasW := rules["w"]
		switch {
		case hasR && hasW && r == w:
			byRule[w] = append(byRule[w], m)
		case hasR && hasW:
			byRule[r] = append(byRule[r], m+" [r]")
			byRule[w] = append(byRule[w], m+" [w]")
		case hasR:
			byRule[r] = append(byRule[r], m+" [r]")
		case hasW:
			byRule[w] = append(byRule[w], m+" [w]")
		}
	}

	rules := make([]string, 0, len(byRule))
	for r := range byRule {
		rules = append(rules, r)
	}
	sort.Slice(rules, func(i, j int) bool {
		// "no locks" first, then lexicographic — matching Fig. 8's
		// layout which opens with the lock-free members.
		a, b := rules[i], rules[j]
		if (a == "no locks") != (b == "no locks") {
			return a == "no locks"
		}
		return a < b
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "/*\n * %s locking rules (generated by LockDoc):\n *\n", typeLabel)
	for _, r := range rules {
		ms := byRule[r]
		if r == "no locks" {
			sb.WriteString(" * No locks needed for:\n")
		} else {
			fmt.Fprintf(&sb, " * %s protects:\n", r)
		}
		fmt.Fprintf(&sb, " *   %s\n *\n", strings.Join(ms, ", "))
	}
	sb.WriteString(" */\n")
	return sb.String()
}
