package analysis

import (
	"context"
	"fmt"
	"io"
	"sort"

	"lockdoc/internal/core"
	"lockdoc/internal/db"
)

// RuleChange records one member whose winning locking rule differs
// between two traces — the building block of documentation regression
// checking: run LockDoc against two kernel versions (or two workloads)
// and diff the mined rules instead of re-reading all documentation.
type RuleChange struct {
	TypeLabel string
	Member    string
	Write     bool
	// Before/After are the rendered winning rules; the empty string
	// means the member was not observed in that trace.
	Before, After string
	// SrBefore/SrAfter carry the winners' relative support.
	SrBefore, SrAfter float64
}

// Label renders "inode:ext4.i_state (w)".
func (c RuleChange) Label() string {
	at := "r"
	if c.Write {
		at = "w"
	}
	return fmt.Sprintf("%s.%s (%s)", c.TypeLabel, c.Member, at)
}

// DiffRules derives winning rules from both stores and returns every
// member whose winner differs (including members observed in only one
// trace). Rules are compared by their rendered lock sequence, so two
// traces with different interned key IDs compare correctly.
// Cancelling ctx aborts the underlying derivations at the next group
// boundary with ctx.Err().
func DiffRules(ctx context.Context, before, after *db.DB, opt core.Options) ([]RuleChange, error) {
	type winner struct {
		rule string
		sr   float64
	}
	collect := func(d *db.DB) (map[string]winner, error) {
		results, err := core.DeriveAll(ctx, d, opt)
		if err != nil {
			return nil, err
		}
		out := make(map[string]winner)
		for _, res := range results {
			if res.Winner == nil {
				continue
			}
			key := res.Group.TypeLabel() + "\x00" + res.Group.MemberName() + "\x00" + res.Group.AccessType()
			out[key] = winner{rule: d.SeqString(res.Winner.Seq), sr: res.Winner.Sr}
		}
		return out, nil
	}
	wb, err := collect(before)
	if err != nil {
		return nil, err
	}
	wa, err := collect(after)
	if err != nil {
		return nil, err
	}

	keys := make(map[string]bool, len(wb)+len(wa))
	for k := range wb {
		keys[k] = true
	}
	for k := range wa {
		keys[k] = true
	}
	var changes []RuleChange
	for k := range keys {
		b, hasB := wb[k]
		a, hasA := wa[k]
		if hasB && hasA && b.rule == a.rule {
			continue
		}
		var label, member, at string
		for i, part := range splitNull(k) {
			switch i {
			case 0:
				label = part
			case 1:
				member = part
			case 2:
				at = part
			}
		}
		changes = append(changes, RuleChange{
			TypeLabel: label, Member: member, Write: at == "w",
			Before: b.rule, After: a.rule,
			SrBefore: b.sr, SrAfter: a.sr,
		})
	}
	sort.Slice(changes, func(i, j int) bool {
		a, b := changes[i], changes[j]
		if a.TypeLabel != b.TypeLabel {
			return a.TypeLabel < b.TypeLabel
		}
		if a.Member != b.Member {
			return a.Member < b.Member
		}
		return !a.Write && b.Write
	})
	return changes, nil
}

func splitNull(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// RenderDiff prints the rule changes.
func RenderDiff(w io.Writer, changes []RuleChange) {
	if len(changes) == 0 {
		fmt.Fprintln(w, "no rule changes")
		return
	}
	fmt.Fprintf(w, "%d rule changes:\n", len(changes))
	for _, c := range changes {
		before, after := c.Before, c.After
		if before == "" {
			before = "(not observed)"
		}
		if after == "" {
			after = "(not observed)"
		}
		fmt.Fprintf(w, "  %-40s %s (sr=%.2f)  ->  %s (sr=%.2f)\n",
			c.Label(), before, c.SrBefore, after, c.SrAfter)
	}
}
