package analysis

import (
	"context"
	"strings"
	"testing"

	"lockdoc/internal/core"
	"lockdoc/internal/db"
	"lockdoc/internal/trace"
)

// miniDB builds a store with one member whose accesses run under the
// given lock name (or no lock when name is empty).
func miniDB(t *testing.T, lockName string, count int) *db.DB {
	t.Helper()
	d := db.New(db.Config{})
	seq := uint64(0)
	add := func(ev trace.Event) {
		seq++
		ev.Seq, ev.TS = seq, seq
		if err := d.Add(&ev); err != nil {
			t.Fatal(err)
		}
	}
	add(trace.Event{Kind: trace.KindDefType, TypeID: 1, TypeName: "obj", Members: []trace.MemberDef{
		{Name: "x", Offset: 0, Size: 8},
	}})
	add(trace.Event{Kind: trace.KindDefFunc, FuncID: 1, File: "a.c", Line: 1, Func: "f"})
	add(trace.Event{Kind: trace.KindAlloc, Ctx: 1, AllocID: 1, TypeID: 1, Addr: 0x1000, Size: 8})
	if lockName != "" {
		add(trace.Event{Kind: trace.KindDefLock, LockID: 1, LockName: lockName,
			Class: trace.LockSpin, LockAddr: 0x100})
	}
	for i := 0; i < count; i++ {
		if lockName != "" {
			add(trace.Event{Kind: trace.KindAcquire, Ctx: 1, LockID: 1})
		}
		add(trace.Event{Kind: trace.KindWrite, Ctx: 1, Addr: 0x1000, AccessSize: 8, FuncID: 1})
		if lockName != "" {
			add(trace.Event{Kind: trace.KindRelease, Ctx: 1, LockID: 1})
		}
	}
	d.Flush()
	return d
}

func TestDiffRulesDetectsChange(t *testing.T) {
	before := miniDB(t, "lock_a", 20)
	after := miniDB(t, "lock_b", 20)
	changes, err := DiffRules(context.Background(), before, after, core.Options{AcceptThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("got %d changes, want 1", len(changes))
	}
	c := changes[0]
	if c.Member != "x" || !c.Write {
		t.Errorf("change = %+v", c)
	}
	if c.Before != "lock_a" || c.After != "lock_b" {
		t.Errorf("rules = %q -> %q", c.Before, c.After)
	}
	var sb strings.Builder
	RenderDiff(&sb, changes)
	if !strings.Contains(sb.String(), "lock_a") || !strings.Contains(sb.String(), "lock_b") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func TestDiffRulesNoChange(t *testing.T) {
	before := miniDB(t, "lock_a", 20)
	after := miniDB(t, "lock_a", 35) // same rule, different volume
	changes, err := DiffRules(context.Background(), before, after, core.Options{AcceptThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 0 {
		t.Fatalf("got %d changes, want 0: %+v", len(changes), changes)
	}
	var sb strings.Builder
	RenderDiff(&sb, changes)
	if !strings.Contains(sb.String(), "no rule changes") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func TestDiffRulesOneSided(t *testing.T) {
	before := miniDB(t, "lock_a", 20)
	after := db.New(db.Config{}) // nothing observed
	changes, err := DiffRules(context.Background(), before, after, core.Options{AcceptThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("got %d changes, want 1", len(changes))
	}
	if changes[0].After != "" {
		t.Errorf("After = %q, want unobserved", changes[0].After)
	}
	var sb strings.Builder
	RenderDiff(&sb, changes)
	if !strings.Contains(sb.String(), "(not observed)") {
		t.Errorf("render:\n%s", sb.String())
	}
}

func TestDiffLockFreeToLocked(t *testing.T) {
	before := miniDB(t, "", 20) // no-lock winner
	after := miniDB(t, "lock_a", 20)
	changes, err := DiffRules(context.Background(), before, after, core.Options{AcceptThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(changes) != 1 {
		t.Fatalf("got %d changes, want 1", len(changes))
	}
	if changes[0].Before != "no locks" || changes[0].After != "lock_a" {
		t.Errorf("rules = %q -> %q", changes[0].Before, changes[0].After)
	}
}
