package analysis

import (
	"encoding/json"
	"io"

	"lockdoc/internal/core"
	"lockdoc/internal/db"
)

// The paper's locking-rule derivator provides "several human- and
// machine-readable report modes" (Sec. 6). This file is the
// machine-readable side: JSON documents for derivation results, check
// results and violations, meant for downstream tooling (dashboards,
// CI gates, the diff tool of other checkouts). HTML escaping is off so
// the "a -> b" arrow notation survives grep-ably instead of as \u003e.

// RuleJSON is one derived rule in the JSON report.
type RuleJSON struct {
	Type     string  `json:"type"`
	Subclass string  `json:"subclass,omitempty"`
	Member   string  `json:"member"`
	Access   string  `json:"access"` // "r" or "w"
	Rule     string  `json:"rule"`   // "no locks" or the arrow sequence
	Sa       uint64  `json:"sa"`
	Sr       float64 `json:"sr"`
	Total    uint64  `json:"observations"`
	// Hypotheses carries the full candidate list when requested.
	Hypotheses []HypothesisJSON `json:"hypotheses,omitempty"`
}

// HypothesisJSON is one candidate rule.
type HypothesisJSON struct {
	Rule string  `json:"rule"`
	Sa   uint64  `json:"sa"`
	Sr   float64 `json:"sr"`
}

// WriteRulesJSON emits the derivation results as a JSON array. With
// includeHypotheses, every candidate is embedded per rule.
func WriteRulesJSON(w io.Writer, d *db.DB, results []core.Result, includeHypotheses bool) error {
	out := make([]RuleJSON, 0, len(results))
	for _, res := range results {
		if res.Winner == nil {
			continue
		}
		rj := RuleJSON{
			Type:     res.Group.Type.Name,
			Subclass: res.Group.Key.Subclass,
			Member:   res.Group.MemberName(),
			Access:   res.Group.AccessType(),
			Rule:     d.SeqString(res.Winner.Seq),
			Sa:       res.Winner.Sa,
			Sr:       res.Winner.Sr,
			Total:    res.Total,
		}
		if includeHypotheses {
			for _, h := range res.Hypotheses {
				rj.Hypotheses = append(rj.Hypotheses, HypothesisJSON{
					Rule: d.SeqString(h.Seq), Sa: h.Sa, Sr: h.Sr,
				})
			}
		}
		out = append(out, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// CheckJSON is one documented-rule verdict in the JSON report.
type CheckJSON struct {
	Type    string  `json:"type"`
	Member  string  `json:"member"`
	Access  string  `json:"access"`
	Rule    string  `json:"rule"`
	Source  string  `json:"source,omitempty"`
	Verdict string  `json:"verdict"`
	Sa      uint64  `json:"sa"`
	Sr      float64 `json:"sr"`
}

// WriteChecksJSON emits rule-checker results as a JSON array.
func WriteChecksJSON(w io.Writer, results []CheckResult) error {
	out := make([]CheckJSON, 0, len(results))
	for _, r := range results {
		at := "r"
		if r.Spec.Write {
			at = "w"
		}
		out = append(out, CheckJSON{
			Type: r.Spec.Type, Member: r.Spec.Member, Access: at,
			Rule: r.Spec.RuleString(), Source: r.Spec.Source,
			Verdict: r.Verdict.String(), Sa: r.Sa, Sr: r.Sr,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ViolationJSON is one violation example in the JSON report.
type ViolationJSON struct {
	TypeMember string `json:"type_member"`
	Rule       string `json:"rule"`
	Held       string `json:"held"`
	Location   string `json:"location"`
	Stack      string `json:"stack"`
	Events     uint64 `json:"events"`
}

// WriteViolationsJSON emits violation examples as a JSON array.
func WriteViolationsJSON(w io.Writer, examples []ViolationExample) error {
	out := make([]ViolationJSON, 0, len(examples))
	for _, e := range examples {
		out = append(out, ViolationJSON{
			TypeMember: e.TypeMember, Rule: e.Rule, Held: e.Held,
			Location: e.Location, Stack: e.Stack, Events: e.Events,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
