package analysis

import (
	"context"
	"strings"
	"testing"

	"lockdoc/internal/core"
	"lockdoc/internal/db"
	"lockdoc/internal/trace"
)

// fixture builds a small database with two types and a few locking
// patterns by feeding synthetic events.
func fixture(t *testing.T) *db.DB {
	t.Helper()
	d := db.New(db.Config{SubclassedTypes: []string{"inode"}})
	seq := uint64(0)
	add := func(ev trace.Event) {
		seq++
		ev.Seq, ev.TS = seq, seq
		if err := d.Add(&ev); err != nil {
			t.Fatal(err)
		}
	}
	add(trace.Event{Kind: trace.KindDefType, TypeID: 1, TypeName: "inode", Members: []trace.MemberDef{
		{Name: "i_state", Offset: 0, Size: 8},
		{Name: "i_size", Offset: 8, Size: 8},
		{Name: "i_lock", Offset: 16, Size: 8, IsLock: true},
		{Name: "i_count", Offset: 24, Size: 8, Atomic: true},
	}})
	add(trace.Event{Kind: trace.KindDefType, TypeID: 2, TypeName: "dentry", Members: []trace.MemberDef{
		{Name: "d_flags", Offset: 0, Size: 8},
	}})
	add(trace.Event{Kind: trace.KindDefFunc, FuncID: 1, File: "fs/inode.c", Line: 100, Func: "inode_op"})
	add(trace.Event{Kind: trace.KindDefFunc, FuncID: 2, File: "fs/bad.c", Line: 50, Func: "sloppy_op"})
	add(trace.Event{Kind: trace.KindDefStack, StackID: 1, StackFuncs: []uint32{1}})
	add(trace.Event{Kind: trace.KindDefStack, StackID: 2, StackFuncs: []uint32{2}})
	add(trace.Event{Kind: trace.KindAlloc, Ctx: 1, AllocID: 1, TypeID: 1, Addr: 0x1000, Size: 32, Subclass: "ext4"})
	add(trace.Event{Kind: trace.KindAlloc, Ctx: 1, AllocID: 2, TypeID: 2, Addr: 0x2000, Size: 8})
	add(trace.Event{Kind: trace.KindDefLock, LockID: 1, LockName: "i_lock", Class: trace.LockSpin, LockAddr: 0x1010, OwnerAddr: 0x1000})
	add(trace.Event{Kind: trace.KindDefLock, LockID: 2, LockName: "d_lock", Class: trace.LockSpin, LockAddr: 0x300})

	// i_state: 20 writes under i_lock (perfect rule).
	for i := 0; i < 20; i++ {
		add(trace.Event{Kind: trace.KindAcquire, Ctx: 1, LockID: 1, FuncID: 1})
		add(trace.Event{Kind: trace.KindWrite, Ctx: 1, Addr: 0x1000, AccessSize: 8, FuncID: 1, StackID: 1})
		add(trace.Event{Kind: trace.KindRelease, Ctx: 1, LockID: 1, FuncID: 1})
	}
	// i_size: 19 writes under i_lock, 1 without (ambivalent, violation).
	for i := 0; i < 19; i++ {
		add(trace.Event{Kind: trace.KindAcquire, Ctx: 1, LockID: 1, FuncID: 1})
		add(trace.Event{Kind: trace.KindWrite, Ctx: 1, Addr: 0x1008, AccessSize: 8, FuncID: 1, StackID: 1})
		add(trace.Event{Kind: trace.KindRelease, Ctx: 1, LockID: 1, FuncID: 1})
	}
	add(trace.Event{Kind: trace.KindWrite, Ctx: 1, Addr: 0x1008, AccessSize: 8, FuncID: 2, StackID: 2})
	// dentry.d_flags: always lock-free reads.
	for i := 0; i < 10; i++ {
		add(trace.Event{Kind: trace.KindRead, Ctx: 1, Addr: 0x2000, AccessSize: 8, FuncID: 1, StackID: 1})
		add(trace.Event{Kind: trace.KindAcquire, Ctx: 1, LockID: 2, FuncID: 1})
		add(trace.Event{Kind: trace.KindRelease, Ctx: 1, LockID: 2, FuncID: 1})
	}
	d.Flush()
	return d
}

func TestParseLockSpec(t *testing.T) {
	cases := map[string]string{
		"inode_hash_lock":               "inode_hash_lock",
		"ES(i_lock in inode)":           "ES(i_lock in inode)",
		"ES(inode.i_lock)":              "ES(i_lock in inode)",
		"EO(list_lock in backing_dev)":  "EO(list_lock in backing_dev)",
		"EO(backing_dev.list_lock)":     "EO(list_lock in backing_dev)",
		" ES(journal_t.j_state_lock) ":  "ES(j_state_lock in journal_t)",
		"rcu":                           "rcu",
		"softirq":                       "softirq",
		"EO(wb.list_lock in bdi)":       "EO(wb.list_lock in bdi)",
		"ES(i_data.tree_lock in inode)": "ES(i_data.tree_lock in inode)",
	}
	for in, want := range cases {
		got, err := ParseLockSpec(in)
		if err != nil {
			t.Errorf("ParseLockSpec(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseLockSpec(%q) = %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"", "ES()", "EO(x)", "ES(.x)", "ES(x.)", "foo bar", "foo(x)"} {
		if _, err := ParseLockSpec(bad); err == nil {
			t.Errorf("ParseLockSpec(%q) should fail", bad)
		}
	}
}

func TestCheckRuleVerdicts(t *testing.T) {
	d := fixture(t)
	cases := []struct {
		spec RuleSpec
		want Verdict
	}{
		{RuleSpec{Type: "inode", Subclass: "ext4", Member: "i_state", Write: true,
			Locks: []string{"ES(inode.i_lock)"}}, Correct},
		{RuleSpec{Type: "inode", Subclass: "ext4", Member: "i_size", Write: true,
			Locks: []string{"ES(inode.i_lock)"}}, Ambivalent},
		{RuleSpec{Type: "dentry", Member: "d_flags", Write: false,
			Locks: []string{"d_lock"}}, Incorrect},
		{RuleSpec{Type: "inode", Subclass: "ext4", Member: "i_state", Write: false,
			Locks: []string{"ES(inode.i_lock)"}}, NotObserved},
		{RuleSpec{Type: "inode", Subclass: "ext4", Member: "i_state", Write: true,
			Locks: []string{"never_seen_lock"}}, Incorrect},
	}
	for _, c := range cases {
		res, err := CheckRule(d, c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec.Label(), err)
			continue
		}
		if res.Verdict != c.want {
			t.Errorf("%s: verdict = %v (sr=%.2f), want %v", c.spec.Label(), res.Verdict, res.Sr, c.want)
		}
	}
}

func TestSummarize(t *testing.T) {
	d := fixture(t)
	specs := []RuleSpec{
		{Type: "inode", Subclass: "ext4", Member: "i_state", Write: true, Locks: []string{"ES(inode.i_lock)"}},
		{Type: "inode", Subclass: "ext4", Member: "i_size", Write: true, Locks: []string{"ES(inode.i_lock)"}},
		{Type: "inode", Subclass: "ext4", Member: "i_state", Write: false, Locks: []string{"ES(inode.i_lock)"}},
		{Type: "dentry", Member: "d_flags", Write: false, Locks: []string{"d_lock"}},
	}
	results, err := CheckAll(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(results)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	ino := sums[0]
	if ino.Type != "inode" || ino.Rules != 3 || ino.NotObs != 1 || ino.Observed != 2 ||
		ino.Correct != 1 || ino.Ambivalent != 1 {
		t.Errorf("inode summary = %+v", ino)
	}
	if got := ino.CorrectPct(); got != 50 {
		t.Errorf("CorrectPct = %f, want 50", got)
	}
	den := sums[1]
	if den.Incorrect != 1 || den.IncorrectPct() != 100 {
		t.Errorf("dentry summary = %+v", den)
	}
}

func TestFindViolations(t *testing.T) {
	d := fixture(t)
	results, _ := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	viols := FindViolations(d, results)
	if len(viols) != 1 {
		t.Fatalf("got %d violations, want 1 (the lock-free i_size write)", len(viols))
	}
	v := viols[0]
	if v.Group.MemberName() != "i_size" || !v.Group.Key.Write {
		t.Errorf("violation on %s/%s, want i_size/w", v.Group.MemberName(), v.Group.AccessType())
	}
	if v.Events != 1 || v.Count != 1 {
		t.Errorf("events/count = %d/%d, want 1/1", v.Events, v.Count)
	}
	if len(v.Held) != 0 {
		t.Errorf("held = %v, want empty", d.SeqString(v.Held))
	}
}

func TestViolationSummaryAndExamples(t *testing.T) {
	d := fixture(t)
	results, _ := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	viols := FindViolations(d, results)
	sums := SummarizeViolations(d, viols)
	byLabel := map[string]ViolationSummary{}
	for _, s := range sums {
		byLabel[s.TypeLabel] = s
	}
	ino := byLabel["inode:ext4"]
	if ino.Events != 1 || ino.Members != 1 || ino.Contexts != 1 {
		t.Errorf("inode:ext4 summary = %+v, want 1/1/1", ino)
	}
	// dentry has observations but no violations: zero row present.
	den, ok := byLabel["dentry"]
	if !ok {
		t.Fatal("dentry zero row missing")
	}
	if den.Events != 0 || den.Members != 0 || den.Contexts != 0 {
		t.Errorf("dentry summary = %+v, want zeros", den)
	}

	exs := Examples(d, viols, 10)
	if len(exs) != 1 {
		t.Fatalf("got %d examples, want 1", len(exs))
	}
	ex := exs[0]
	if ex.TypeMember != "inode:ext4.i_size" {
		t.Errorf("TypeMember = %q", ex.TypeMember)
	}
	if ex.Location != "fs/bad.c:50" {
		t.Errorf("Location = %q, want fs/bad.c:50", ex.Location)
	}
	if !strings.Contains(ex.Stack, "sloppy_op") {
		t.Errorf("Stack = %q, want sloppy_op", ex.Stack)
	}
	if ex.Rule != "ES(i_lock in inode)" {
		t.Errorf("Rule = %q", ex.Rule)
	}
	if ex.Held != "no locks" {
		t.Errorf("Held = %q", ex.Held)
	}
}

func TestMiningSummary(t *testing.T) {
	d := fixture(t)
	results, _ := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	sums := SummarizeMining(d, results)
	byLabel := map[string]MiningSummary{}
	for _, s := range sums {
		byLabel[s.TypeLabel] = s
	}
	ino := byLabel["inode:ext4"]
	if ino.Members != 4 {
		t.Errorf("inode #M = %d, want 4", ino.Members)
	}
	if ino.Blacklisted != 2 { // i_lock + i_count
		t.Errorf("inode #Bl = %d, want 2", ino.Blacklisted)
	}
	if ino.RulesWrite != 2 { // i_state, i_size
		t.Errorf("inode #Rules(w) = %d, want 2", ino.RulesWrite)
	}
	if ino.NoLockWrite != 0 {
		t.Errorf("inode #Nl(w) = %d, want 0", ino.NoLockWrite)
	}
	den := byLabel["dentry"]
	if den.RulesRead != 1 || den.NoLockRead != 1 {
		t.Errorf("dentry rules/nolock (r) = %d/%d, want 1/1", den.RulesRead, den.NoLockRead)
	}
}

func TestNoLockFractionSweep(t *testing.T) {
	d := fixture(t)
	points, err := ThresholdSweep(context.Background(), d, 0.7, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d sweep points, want 4", len(points))
	}
	// dentry.d_flags reads are always lock-free: 100% no-lock at every
	// threshold.
	for _, p := range points {
		if got := p.Fractions["dentry"]["r"]; got != 100 {
			t.Errorf("t_ac=%.1f: dentry r no-lock = %f, want 100", p.Threshold, got)
		}
	}
	// i_size writes: 95% under i_lock. At t_ac=0.9 the i_lock rule wins
	// (no-lock fraction over inode writes = 0); at t_ac=1.0 only no-lock
	// clears the bar for i_size, so the write fraction rises to 50%.
	first := points[0].Fractions["inode:ext4"]["w"]
	last := points[len(points)-1].Fractions["inode:ext4"]["w"]
	if first != 0 {
		t.Errorf("t_ac=0.7: inode w no-lock = %f, want 0", first)
	}
	if last != 50 {
		t.Errorf("t_ac=1.0: inode w no-lock = %f, want 50", last)
	}
}

func TestGenerateDoc(t *testing.T) {
	d := fixture(t)
	results, _ := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	doc := GenerateDoc(d, results, "inode:ext4")
	if !strings.Contains(doc, "ES(i_lock in inode) protects:") {
		t.Errorf("doc lacks i_lock rule:\n%s", doc)
	}
	if !strings.Contains(doc, "i_state") || !strings.Contains(doc, "i_size") {
		t.Errorf("doc lacks members:\n%s", doc)
	}
	dd := GenerateDoc(d, results, "dentry")
	if !strings.Contains(dd, "No locks needed for:") || !strings.Contains(dd, "d_flags") {
		t.Errorf("dentry doc wrong:\n%s", dd)
	}
}

func TestVerdictStrings(t *testing.T) {
	if Correct.String() != "correct" || Correct.Mark() != "ok" {
		t.Error("Correct naming wrong")
	}
	if Ambivalent.Mark() != "~" || Incorrect.Mark() != "X" || NotObserved.Mark() != "-" {
		t.Error("marks wrong")
	}
}

func TestSortChecks(t *testing.T) {
	rs := []CheckResult{
		{Spec: RuleSpec{Member: "b"}, Sr: 0.5},
		{Spec: RuleSpec{Member: "a", Write: true}, Sr: 1.0},
		{Spec: RuleSpec{Member: "c"}, Sr: 1.0},
	}
	SortChecks(rs)
	if rs[0].Spec.Member != "a" || rs[1].Spec.Member != "c" || rs[2].Spec.Member != "b" {
		t.Errorf("order = %v", []string{rs[0].Spec.Member, rs[1].Spec.Member, rs[2].Spec.Member})
	}
}
