// Package analysis implements LockDoc's phase-3 tools (Sec. 5.5): the
// locking-rule checker that validates documented rules against the
// trace, the documentation generator that renders mined rules in the
// style of fs/inode.c's header comment, and the rule-violation finder
// that locates accesses contradicting the winning rules.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"lockdoc/internal/core"
	"lockdoc/internal/db"
)

// Verdict classifies a documented rule after checking it against the
// observations (Sec. 5.5).
type Verdict uint8

// Verdicts.
const (
	// NotObserved: the benchmark never accessed the member, so the rule
	// could not be validated (column #No of Tab. 4).
	NotObserved Verdict = iota
	// Correct: every observation follows the rule (s_r = 1).
	Correct
	// Ambivalent: the rule is followed sometimes (0 < s_r < 1).
	Ambivalent
	// Incorrect: the rule is never followed (s_r = 0).
	Incorrect
)

// String renders the verdict with the paper's symbols.
func (v Verdict) String() string {
	switch v {
	case Correct:
		return "correct"
	case Ambivalent:
		return "ambivalent"
	case Incorrect:
		return "incorrect"
	default:
		return "not-observed"
	}
}

// Mark returns the single-character table mark used in Tab. 5.
func (v Verdict) Mark() string {
	switch v {
	case Correct:
		return "ok"
	case Ambivalent:
		return "~"
	case Incorrect:
		return "X"
	default:
		return "-"
	}
}

// RuleSpec is one documented locking rule: the member it covers and the
// lock sequence the documentation demands. Locks are given in the
// paper's textual notation ("inode_hash_lock", "ES(i_lock in inode)",
// "EO(list_lock in backing_dev_info)"); ParseLockSpec normalizes the
// legacy dot form "ES(inode.i_lock)" as well.
type RuleSpec struct {
	Type     string
	Subclass string // empty = rule applies to the unsubclassed group
	Member   string
	Write    bool
	Locks    []string
	Source   string // where the documentation lives, e.g. "fs/inode.c:14"
}

// Label renders "type.member (w)".
func (r RuleSpec) Label() string {
	at := "r"
	if r.Write {
		at = "w"
	}
	ty := r.Type
	if r.Subclass != "" {
		ty += ":" + r.Subclass
	}
	return fmt.Sprintf("%s.%s (%s)", ty, r.Member, at)
}

// RuleString renders the demanded lock sequence.
func (r RuleSpec) RuleString() string {
	if len(r.Locks) == 0 {
		return "no locks"
	}
	return strings.Join(r.Locks, " -> ")
}

// ParseLockSpec normalizes one lock reference into the canonical
// rendering used by db.LockKey.String.
func ParseLockSpec(s string) (string, error) {
	s = strings.TrimSpace(s)
	for _, kind := range []string{"ES", "EO"} {
		prefix := kind + "("
		if !strings.HasPrefix(s, prefix) || !strings.HasSuffix(s, ")") {
			continue
		}
		inner := s[len(prefix) : len(s)-1]
		if i := strings.Index(inner, " in "); i >= 0 {
			member, owner := inner[:i], inner[i+4:]
			if member == "" || owner == "" {
				return "", fmt.Errorf("analysis: malformed lock spec %q", s)
			}
			return fmt.Sprintf("%s(%s in %s)", kind, member, owner), nil
		}
		if i := strings.IndexByte(inner, '.'); i >= 0 {
			owner, member := inner[:i], inner[i+1:]
			if member == "" || owner == "" {
				return "", fmt.Errorf("analysis: malformed lock spec %q", s)
			}
			return fmt.Sprintf("%s(%s in %s)", kind, member, owner), nil
		}
		return "", fmt.Errorf("analysis: embedded lock spec %q lacks owner type", s)
	}
	if strings.ContainsAny(s, "() ") {
		return "", fmt.Errorf("analysis: malformed lock spec %q", s)
	}
	if s == "" {
		return "", fmt.Errorf("analysis: empty lock spec")
	}
	return s, nil
}

// CheckResult is the outcome of validating one documented rule.
type CheckResult struct {
	Spec    RuleSpec
	Verdict Verdict
	Sa      uint64
	Sr      float64
}

// CheckRule validates one documented rule against the observations.
func CheckRule(d *db.DB, spec RuleSpec) (CheckResult, error) {
	res := CheckResult{Spec: spec}
	g, ok := d.GroupMerged(spec.Type, spec.Subclass, spec.Member, spec.Write)
	if !ok || g.Total == 0 {
		res.Verdict = NotObserved
		return res, nil
	}
	var rule db.LockSeq
	for _, ls := range spec.Locks {
		canon, err := ParseLockSpec(ls)
		if err != nil {
			return res, err
		}
		id, ok := d.KeyByString(canon)
		if !ok {
			// The documented lock was never observed held during any
			// access to this member: the rule is never followed.
			res.Verdict = Incorrect
			return res, nil
		}
		rule = append(rule, id)
	}
	res.Sa, res.Sr = core.Support(g, rule)
	switch {
	case res.Sr >= 1.0:
		res.Verdict = Correct
	case res.Sr > 0:
		res.Verdict = Ambivalent
	default:
		res.Verdict = Incorrect
	}
	return res, nil
}

// CheckAll validates a rule corpus.
func CheckAll(d *db.DB, specs []RuleSpec) ([]CheckResult, error) {
	out := make([]CheckResult, 0, len(specs))
	for _, spec := range specs {
		res, err := CheckRule(d, spec)
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", spec.Label(), err)
		}
		out = append(out, res)
	}
	return out, nil
}

// CheckSummary aggregates check results per data type — one row of
// Tab. 4.
type CheckSummary struct {
	Type       string
	Rules      int // #R
	NotObs     int // #No
	Observed   int // #Ob
	Correct    int
	Ambivalent int
	Incorrect  int
}

// Pct helpers for the Tab. 4 percentage columns (of observed rules).
func (s CheckSummary) CorrectPct() float64    { return pct(s.Correct, s.Observed) }
func (s CheckSummary) AmbivalentPct() float64 { return pct(s.Ambivalent, s.Observed) }
func (s CheckSummary) IncorrectPct() float64  { return pct(s.Incorrect, s.Observed) }

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// Summarize groups check results per type in first-seen order.
func Summarize(results []CheckResult) []CheckSummary {
	index := make(map[string]int)
	var out []CheckSummary
	for _, r := range results {
		i, ok := index[r.Spec.Type]
		if !ok {
			i = len(out)
			index[r.Spec.Type] = i
			out = append(out, CheckSummary{Type: r.Spec.Type})
		}
		s := &out[i]
		s.Rules++
		switch r.Verdict {
		case NotObserved:
			s.NotObs++
		case Correct:
			s.Observed++
			s.Correct++
		case Ambivalent:
			s.Observed++
			s.Ambivalent++
		case Incorrect:
			s.Observed++
			s.Incorrect++
		}
	}
	return out
}

// SortChecks orders detailed check results the way Tab. 5 presents them:
// by descending relative support, writes before reads on ties.
func SortChecks(results []CheckResult) {
	sort.SliceStable(results, func(i, j int) bool {
		a, b := results[i], results[j]
		if a.Sr != b.Sr {
			return a.Sr > b.Sr
		}
		if a.Spec.Write != b.Spec.Write {
			return a.Spec.Write
		}
		return a.Spec.Member < b.Spec.Member
	})
}
