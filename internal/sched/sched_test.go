package sched

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSingleTaskRuns(t *testing.T) {
	s := New(1, 0)
	ran := false
	s.Go("solo", func(task *Task) {
		ran = true
		task.Tick(5)
	})
	s.Run()
	if !ran {
		t.Fatal("task body never ran")
	}
	if s.Now() != 5 {
		t.Errorf("Now() = %d, want 5", s.Now())
	}
}

func TestTasksInterleaveDeterministically(t *testing.T) {
	runOnce := func(seed int64) string {
		s := New(seed, 2) // aggressive preemption
		var order strings.Builder
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Go(name, func(task *Task) {
				for i := 0; i < 10; i++ {
					order.WriteString(name)
					task.Tick(1)
				}
			})
		}
		s.Run()
		return order.String()
	}
	first := runOnce(42)
	if first == strings.Repeat("a", 10)+strings.Repeat("b", 10)+strings.Repeat("c", 10) {
		t.Error("no interleaving observed despite preemption")
	}
	for i := 0; i < 5; i++ {
		if got := runOnce(42); got != first {
			t.Fatalf("run %d differs: %q vs %q — scheduler is not deterministic", i, got, first)
		}
	}
	if runOnce(43) == first {
		t.Log("different seeds produced identical schedule (possible but unlikely)")
	}
}

func TestDeterminismProperty(t *testing.T) {
	prop := func(seed int64) bool {
		run := func() string {
			s := New(seed, 3)
			var order strings.Builder
			wq := NewWaitQueue("q")
			s.Go("producer", func(task *Task) {
				for i := 0; i < 5; i++ {
					order.WriteString("p")
					task.Tick(1)
					s.WakeOne(wq)
				}
				s.WakeAll(wq)
			})
			s.Go("consumer", func(task *Task) {
				for i := 0; i < 3; i++ {
					order.WriteString("c")
					if s.Rand(2) == 0 {
						task.Yield()
					}
					task.Tick(1)
				}
			})
			s.Run()
			return order.String()
		}
		return run() == run()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBlockAndWake(t *testing.T) {
	s := New(7, 0)
	wq := NewWaitQueue("data")
	var got []string
	s.Go("waiter", func(task *Task) {
		got = append(got, "wait-start")
		task.Block(wq)
		got = append(got, "woken")
	})
	s.Go("waker", func(task *Task) {
		task.Yield() // let the waiter block first (seed 7, order may vary)
		for !s.WakeOne(wq) {
			task.Yield()
		}
		got = append(got, "woke-it")
	})
	s.Run()
	joined := strings.Join(got, ",")
	if !strings.Contains(joined, "woken") {
		t.Fatalf("waiter never woke: %q", joined)
	}
}

func TestWakeAll(t *testing.T) {
	s := New(3, 0)
	wq := NewWaitQueue("barrier")
	woken := 0
	for i := 0; i < 4; i++ {
		s.Go("w", func(task *Task) {
			task.Block(wq)
			woken++
		})
	}
	s.Go("releaser", func(task *Task) {
		for wq.Len() < 4 {
			task.Yield()
		}
		if n := s.WakeAll(wq); n != 4 {
			t.Errorf("WakeAll woke %d, want 4", n)
		}
	})
	s.Run()
	if woken != 4 {
		t.Errorf("woken = %d, want 4", woken)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(r.(string), "deadlock") {
			t.Errorf("panic %q does not mention deadlock", r)
		}
	}()
	s := New(1, 0)
	wq := NewWaitQueue("never")
	s.Go("stuck", func(task *Task) { task.Block(wq) })
	s.Run()
}

func TestTaskPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected task panic to propagate")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Errorf("panic %q does not contain task message", r)
		}
	}()
	s := New(1, 0)
	s.Go("bad", func(task *Task) { panic("boom") })
	s.Run()
}

func TestSleepOrdersByDeadline(t *testing.T) {
	s := New(1, 0)
	var order []string
	s.Go("late", func(task *Task) {
		task.Sleep(100)
		order = append(order, "late")
	})
	s.Go("early", func(task *Task) {
		task.Sleep(10)
		order = append(order, "early")
	})
	s.Run()
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Errorf("order = %v, want [early late]", order)
	}
	if s.Now() < 100 {
		t.Errorf("Now() = %d, want >= 100", s.Now())
	}
}

func TestNoPreemptSuppressesPreemption(t *testing.T) {
	s := New(99, 1) // preempt at every tick if allowed
	var order strings.Builder
	s.Go("critical", func(task *Task) {
		task.NoPreempt++
		for i := 0; i < 20; i++ {
			order.WriteString("x")
			task.Tick(1)
		}
		task.NoPreempt--
	})
	s.Go("other", func(task *Task) {
		for i := 0; i < 20; i++ {
			order.WriteString("y")
			task.Tick(1)
		}
	})
	s.Run()
	seq := order.String()
	// Whichever task runs first, the critical section must appear as one
	// contiguous run of 20 'x'.
	if !strings.Contains(seq, strings.Repeat("x", 20)) {
		t.Errorf("critical section was preempted: %q", seq)
	}
}

func TestIRQInjection(t *testing.T) {
	s := New(5, 0)
	fired := 0
	s.RegisterIRQ("timer", 3, func() { fired++ })
	s.Go("worker", func(task *Task) {
		for i := 0; i < 300; i++ {
			task.Tick(1)
		}
	})
	s.Run()
	if fired == 0 {
		t.Error("irq never fired over 300 ticks at rate 1/3")
	}
}

func TestIRQSuppressedByNoPreempt(t *testing.T) {
	s := New(5, 0)
	fired := 0
	s.RegisterIRQ("timer", 1, func() { fired++ })
	s.Go("worker", func(task *Task) {
		task.IRQOff++
		for i := 0; i < 100; i++ {
			task.Tick(1)
		}
		task.IRQOff--
	})
	s.Run()
	if fired != 0 {
		t.Errorf("irq fired %d times inside IRQOff section", fired)
	}
}

func TestSpawnFromTask(t *testing.T) {
	s := New(2, 0)
	childRan := false
	s.Go("parent", func(task *Task) {
		s.Go("child", func(task *Task) { childRan = true })
	})
	s.Run()
	if !childRan {
		t.Error("dynamically spawned child never ran")
	}
}

func TestSnapshotAndStates(t *testing.T) {
	s := New(2, 0)
	s.Go("a", func(task *Task) {})
	snap := s.Snapshot()
	if !strings.Contains(snap, "a=runnable") {
		t.Errorf("snapshot %q missing runnable task", snap)
	}
	s.Run()
	if !strings.Contains(s.Snapshot(), "a=done") {
		t.Errorf("snapshot %q missing done task", s.Snapshot())
	}
	for st := StateNew; st <= StateDone; st++ {
		if st.String() == "invalid" {
			t.Errorf("state %d has no name", st)
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := New(11, 0), New(11, 0)
	for i := 0; i < 100; i++ {
		if a.Rand(1000) != b.Rand(1000) {
			t.Fatal("Rand diverged for identical seeds")
		}
	}
}
