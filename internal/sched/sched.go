// Package sched implements a deterministic cooperative scheduler that
// stands in for the paper's single-core Bochs emulation environment.
//
// All simulated kernel control flows (tasks, and injected softirq /
// hardirq handlers) execute one at a time: a single "CPU token" is handed
// from the scheduler to exactly one task goroutine, and handed back when
// the task yields, blocks, sleeps or exits. Preemption points are
// explicit (Tick), as they are in an instruction-level emulator, and the
// choice of the next runnable task is drawn from a seeded PRNG — so a
// given (workload, seed) pair always produces bit-identical traces.
//
// Interrupt handlers are injected *synchronously* at preemption points of
// the current task, which models a hardware interrupt preempting the
// running CPU context exactly: the handler runs to completion on the
// interrupted task's goroutine, and events it emits are attributed to a
// separate execution context.
package sched

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// State enumerates the life cycle of a task.
type State uint8

// Task states.
const (
	StateNew State = iota
	StateRunnable
	StateRunning
	StateBlocked
	StateSleeping
	StateDone
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateRunnable:
		return "runnable"
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateSleeping:
		return "sleeping"
	case StateDone:
		return "done"
	default:
		return "invalid"
	}
}

// Task is one simulated kernel thread.
type Task struct {
	ID    uint32
	Name  string
	sched *Scheduler

	state   State
	resume  chan struct{}
	body    func(*Task)
	blocked *WaitQueue // wait queue the task is blocked on, if any
	wakeAt  uint64     // tick deadline while sleeping

	// NoPreempt, while positive, suppresses involuntary preemption at
	// Tick points; IRQOff additionally suppresses interrupt injection.
	// The lock layer uses them to model preempt_disable and
	// local_irq_disable critical sections.
	NoPreempt int
	IRQOff    int
}

// State reports the task's current scheduling state.
func (t *Task) State() State { return t.state }

// Scheduler runs tasks deterministically. It must be driven from a
// single goroutine via Run; task bodies run on their own goroutines but
// never concurrently with each other or with the scheduler loop.
type Scheduler struct {
	rng    *rand.Rand
	tasks  []*Task
	nextID uint32

	runnable []*Task
	current  *Task
	back     chan struct{} // CPU token returned to the scheduler loop

	ticks  uint64
	timers timerHeap

	// preemptEvery is the mean number of ticks between forced
	// preemptions (0 disables preemption).
	preemptEvery int
	// irqs holds registered interrupt sources.
	irqs []*irqSource

	// Panic diagnostics hook: called to describe extra state (e.g. held
	// locks) when the system deadlocks.
	DeadlockInfo func() string

	taskPanic string // first task panic message, re-raised by Run
	running   bool
}

type irqSource struct {
	name    string
	every   int // mean ticks between firings
	handler func()
	pending bool
}

// New returns a scheduler seeded with seed. preemptEvery is the mean
// number of ticks between involuntary preemptions of the running task;
// zero disables involuntary preemption (tasks then run until they yield
// or block).
func New(seed int64, preemptEvery int) *Scheduler {
	return &Scheduler{
		rng:          rand.New(rand.NewSource(seed)),
		back:         make(chan struct{}),
		preemptEvery: preemptEvery,
	}
}

// Now returns the current tick count (the pseudo time stamp used in
// traces).
func (s *Scheduler) Now() uint64 { return s.ticks }

// Current returns the running task, or nil outside task execution.
func (s *Scheduler) Current() *Task { return s.current }

// Go creates a new task executing body. Tasks may be created before Run
// or from inside other tasks.
func (s *Scheduler) Go(name string, body func(*Task)) *Task {
	s.nextID++
	t := &Task{
		ID:     s.nextID,
		Name:   name,
		sched:  s,
		state:  StateRunnable,
		resume: make(chan struct{}),
		body:   body,
	}
	s.tasks = append(s.tasks, t)
	s.runnable = append(s.runnable, t)
	go func() {
		<-t.resume // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				// Surface task panics in the scheduler loop instead of
				// hanging the handshake.
				s.taskPanic = fmt.Sprintf("task %q panicked: %v", t.Name, r)
			}
			t.state = StateDone
			s.back <- struct{}{}
		}()
		t.body(t)
	}()
	return t
}

// RegisterIRQ registers an interrupt source that fires on average every
// `every` ticks at preemption points of the running task. The handler
// runs synchronously in interrupt context (the caller is responsible for
// switching trace contexts).
func (s *Scheduler) RegisterIRQ(name string, every int, handler func()) {
	if every <= 0 {
		panic("sched: irq rate must be positive")
	}
	s.irqs = append(s.irqs, &irqSource{name: name, every: every, handler: handler})
}

// Run dispatches tasks until all of them have finished. It panics with a
// diagnostic if all remaining tasks are blocked with no timer pending —
// a genuine deadlock in the simulated system.
func (s *Scheduler) Run() {
	if s.running {
		panic("sched: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()

	for {
		if len(s.runnable) == 0 {
			if s.timers.Len() == 0 {
				if s.liveTasks() == 0 {
					return // all work done
				}
				panic("sched: deadlock: " + s.describeBlocked())
			}
			// Idle: advance time to the earliest timer.
			s.fireTimers(s.timers[0].at)
			continue
		}
		// Deterministic choice among runnable tasks.
		idx := 0
		if len(s.runnable) > 1 {
			idx = s.rng.Intn(len(s.runnable))
		}
		t := s.runnable[idx]
		s.runnable = append(s.runnable[:idx], s.runnable[idx+1:]...)
		t.state = StateRunning
		s.current = t
		t.resume <- struct{}{}
		<-s.back
		s.current = nil
		if s.taskPanic != "" {
			panic("sched: " + s.taskPanic)
		}
		if t.state == StateRunning { // voluntary yield path re-queues
			t.state = StateRunnable
			s.runnable = append(s.runnable, t)
		}
	}
}

func (s *Scheduler) liveTasks() int {
	n := 0
	for _, t := range s.tasks {
		if t.state != StateDone {
			n++
		}
	}
	return n
}

func (s *Scheduler) describeBlocked() string {
	var b strings.Builder
	for _, t := range s.tasks {
		if t.state == StateBlocked || t.state == StateSleeping {
			fmt.Fprintf(&b, "task %q (%s)", t.Name, t.state)
			if t.blocked != nil {
				fmt.Fprintf(&b, " on %q", t.blocked.Name)
			}
			b.WriteString("; ")
		}
	}
	if s.DeadlockInfo != nil {
		b.WriteString(s.DeadlockInfo())
	}
	return b.String()
}

// fireTimers advances the clock to `to` and wakes every sleeper due by
// then.
func (s *Scheduler) fireTimers(to uint64) {
	if to > s.ticks {
		s.ticks = to
	}
	for s.timers.Len() > 0 && s.timers[0].at <= s.ticks {
		tm := heap.Pop(&s.timers).(*timer)
		if tm.task.state == StateSleeping {
			tm.task.state = StateRunnable
			s.runnable = append(s.runnable, tm.task)
		}
	}
}

// Tick advances pseudo time by n from the running task and gives the
// scheduler a chance to inject interrupts or preempt. It must be called
// from the current task's goroutine.
func (t *Task) Tick(n int) {
	s := t.sched
	s.ticks += uint64(n)
	s.fireTimers(s.ticks)
	if t.IRQOff == 0 {
		for _, irq := range s.irqs {
			if s.rng.Intn(irq.every) == 0 {
				irq.handler()
			}
		}
	}
	if t.NoPreempt == 0 && s.preemptEvery > 0 && len(s.runnable) > 0 && s.rng.Intn(s.preemptEvery) == 0 {
		t.Yield()
	}
}

// Yield hands the CPU back to the scheduler; the task remains runnable.
func (t *Task) Yield() {
	s := t.sched
	// state stays StateRunning; Run re-queues it.
	s.back <- struct{}{}
	<-t.resume
}

// Sleep blocks the task for the given number of ticks.
func (t *Task) Sleep(ticks uint64) {
	s := t.sched
	t.state = StateSleeping
	t.wakeAt = s.ticks + ticks
	heap.Push(&s.timers, &timer{at: t.wakeAt, task: t})
	s.back <- struct{}{}
	<-t.resume
}

// WaitQueue is a FIFO queue of blocked tasks, the moral equivalent of a
// kernel wait_queue_head_t.
type WaitQueue struct {
	Name    string
	waiters []*Task
}

// NewWaitQueue returns an empty wait queue with a diagnostic name.
func NewWaitQueue(name string) *WaitQueue { return &WaitQueue{Name: name} }

// Len reports the number of blocked tasks.
func (wq *WaitQueue) Len() int { return len(wq.waiters) }

// Block suspends the current task on wq until another control flow calls
// WakeOne/WakeAll.
func (t *Task) Block(wq *WaitQueue) {
	s := t.sched
	t.state = StateBlocked
	t.blocked = wq
	wq.waiters = append(wq.waiters, t)
	s.back <- struct{}{}
	<-t.resume
	t.blocked = nil
}

// WakeOne makes the longest-waiting task on wq runnable again. It
// reports whether a task was woken.
func (s *Scheduler) WakeOne(wq *WaitQueue) bool {
	if len(wq.waiters) == 0 {
		return false
	}
	t := wq.waiters[0]
	wq.waiters = wq.waiters[1:]
	t.state = StateRunnable
	s.runnable = append(s.runnable, t)
	return true
}

// WakeAll wakes every task blocked on wq and returns how many were woken.
func (s *Scheduler) WakeAll(wq *WaitQueue) int {
	n := len(wq.waiters)
	for _, t := range wq.waiters {
		t.state = StateRunnable
		s.runnable = append(s.runnable, t)
	}
	wq.waiters = nil
	return n
}

// Rand returns a deterministic pseudo-random int in [0, n). Workloads use
// this instead of math/rand so that a seed fully determines a run.
func (s *Scheduler) Rand(n int) int { return s.rng.Intn(n) }

// Snapshot returns a human-readable dump of task states, sorted by ID,
// for tests and deadlock diagnostics.
func (s *Scheduler) Snapshot() string {
	ts := append([]*Task(nil), s.tasks...)
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, "%d:%s=%s ", t.ID, t.Name, t.state)
	}
	return strings.TrimSpace(b.String())
}

// timer entries order sleeping tasks by deadline.
type timer struct {
	at   uint64
	task *Task
}

type timerHeap []*timer

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
