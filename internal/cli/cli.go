// Package cli bundles the plumbing the lockdoc-* commands share:
// opening a trace file into the post-processing store, the common
// -lenient/-max-errors ingestion flags, and the run() pattern that maps
// errors to distinct process exit codes.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"lockdoc/internal/apiclient"
	"lockdoc/internal/core"
	"lockdoc/internal/db"
	"lockdoc/internal/fs"
	"lockdoc/internal/obs"
	"lockdoc/internal/resilience"
	"lockdoc/internal/segstore"
	"lockdoc/internal/trace"
)

// Process exit codes shared by all lockdoc-* tools.
const (
	ExitClean     = 0 // completed without incident
	ExitFatal     = 1 // failed (or, for diff/lockdep, found regressions)
	ExitUsage     = 2 // bad command line
	ExitRecovered = 3 // completed, but recovered from trace corruption
)

// RunFunc is the testable body of a command: it parses args, writes
// results to stdout and diagnostics to stderr, and reports its outcome
// as an error (nil, *Recovered, or fatal). ctx is cancelled on SIGINT/
// SIGTERM (and by -timeout when the command registers ObsFlags), so
// long derivations and follow loops exit promptly.
type RunFunc func(ctx context.Context, args []string, stdout, stderr io.Writer) error

// Main runs fn with the process's arguments and streams and exits with
// the appropriate code. Each command's main() is exactly this call.
// The context it hands fn is cancelled on the first SIGINT or SIGTERM;
// a second signal kills the process via Go's default disposition.
func Main(name string, fn RunFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := Run(ctx, name, fn, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// Run invokes fn and maps its error to an exit code: nil -> ExitClean,
// *Recovered -> ExitRecovered (after printing the corruption summary on
// stderr), flag parsing problems -> ExitUsage, context cancellation and
// anything else -> ExitFatal.
func Run(ctx context.Context, name string, fn RunFunc, args []string, stdout, stderr io.Writer) int {
	err := fn(ctx, args, stdout, stderr)
	var rec *Recovered
	switch {
	case err == nil:
		return ExitClean
	case errors.Is(err, flag.ErrHelp):
		return ExitClean
	case errors.As(err, &rec):
		fmt.Fprintf(stderr, "%s: %s\n", name, rec.Error())
		return ExitRecovered
	case errors.Is(err, errBadFlags):
		// The FlagSet already printed the diagnostic and usage.
		return ExitUsage
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Fprintf(stderr, "%s: timed out\n", name)
		return ExitFatal
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(stderr, "%s: interrupted\n", name)
		return ExitFatal
	default:
		fmt.Fprintf(stderr, "%s: error: %s\n", name, err)
		return ExitFatal
	}
}

var errBadFlags = errors.New("cli: bad command line")

// Flags returns a FlagSet wired for the run() pattern: errors and usage
// go to stderr and Parse failures map to ExitUsage.
func Flags(name string, stderr io.Writer) *flag.FlagSet {
	fl := flag.NewFlagSet(name, flag.ContinueOnError)
	fl.SetOutput(stderr)
	return fl
}

// Parse parses args and normalizes flag errors for Run.
func Parse(fl *flag.FlagSet, args []string) error {
	if err := fl.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errBadFlags
	}
	return nil
}

// Recovered reports that a tool completed its job but the ingestion
// pipeline had to recover from corruption or drop events along the way.
// Run maps it to ExitRecovered.
type Recovered struct {
	Reports      []trace.CorruptionReport
	BytesSkipped int64
	Dropped      uint64 // events a lenient import skipped
	Detail       string // extra counter rendering, e.g. db.DegradedSummary
}

// Error renders the corruption summary printed on stderr.
func (r *Recovered) Error() string {
	if r.Detail != "" {
		return "completed with recovered corruption: " + r.Detail
	}
	return fmt.Sprintf("completed with recovered corruption: %d corruption(s), %d bytes skipped, %d event(s) dropped",
		len(r.Reports), r.BytesSkipped, r.Dropped)
}

// Summarize writes the per-corruption detail lines to w (stderr).
func (r *Recovered) Summarize(w io.Writer) {
	for _, rep := range r.Reports {
		fmt.Fprintf(w, "  corruption at %s\n", rep)
	}
}

// RecoveredFromDB inspects an imported store and returns a *Recovered
// if the ingestion was degraded, or nil for a clean import. Intended as
// a command's final `return cli.RecoveredFromDB(d)`.
func RecoveredFromDB(d *db.DB) error {
	if len(d.Corruptions) == 0 && d.DroppedEvents() == 0 {
		return nil
	}
	return &Recovered{
		Reports:      d.Corruptions,
		BytesSkipped: d.BytesSkipped,
		Dropped:      d.DroppedEvents(),
		Detail:       d.DegradedSummary(),
	}
}

// RecoveredFromReader is RecoveredFromDB for tools that stream the
// trace directly without building a store.
func RecoveredFromReader(r *trace.Reader) error {
	if len(r.Corruptions()) == 0 {
		return nil
	}
	return &Recovered{Reports: r.Corruptions(), BytesSkipped: r.BytesSkipped()}
}

// IngestFlags are the shared trace-ingestion options of every tool that
// reads a trace file.
type IngestFlags struct {
	Lenient   bool
	MaxErrors int
}

// Register installs the -lenient and -max-errors flags on fl.
func (f *IngestFlags) Register(fl *flag.FlagSet) {
	fl.BoolVar(&f.Lenient, "lenient", false,
		"recover from trace corruption (resync at block markers, drop damaged events) instead of failing")
	fl.IntVar(&f.MaxErrors, "max-errors", 100,
		"error budget in -lenient mode: fail hard after this many recovered corruptions")
}

// ReaderOptions converts the flags to trace-level options.
func (f IngestFlags) ReaderOptions() trace.ReaderOptions {
	return trace.ReaderOptions{Lenient: f.Lenient, MaxErrors: f.MaxErrors}
}

// Options controls how OpenDB ingests a trace.
type Options struct {
	// NoFilter disables the function and member black lists but keeps
	// inode subclassing.
	NoFilter bool
	// Ingest selects strict or lenient decoding/import.
	Ingest IngestFlags
	// Obs, when non-nil, registers the ingestion instruments (trace
	// decode/resync counters, db import/seal timings) on this registry —
	// wire it from ObsFlags.Registry().
	Obs *obs.Registry
}

// OpenDB imports the trace at path with the evaluation's filter
// configuration (fs.DefaultConfig).
func OpenDB(path string, opts Options) (*db.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ro := opts.Ingest.ReaderOptions()
	if opts.Obs != nil {
		ro.Metrics = trace.NewMetrics(opts.Obs)
	}
	r, err := trace.NewReaderOptions(f, ro)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return db.Import(r, ImportConfig(opts))
}

// ImportConfig returns the db configuration OpenDB imports with, for
// tools that drive db.New/Consume/Seal themselves (lockdoc-import
// -store-dir needs the sealed view for state compaction).
func ImportConfig(opts Options) db.Config {
	cfg := fs.DefaultConfig()
	if opts.NoFilter {
		cfg = db.Config{SubclassedTypes: cfg.SubclassedTypes}
	}
	cfg.Lenient = opts.Ingest.Lenient
	if opts.Obs != nil {
		cfg.Metrics = db.NewMetrics(opts.Obs)
	}
	return cfg
}

// OpenTrace opens the trace at path for streaming tools (dump, lockdep,
// relations). reg may be nil; when set, decode instruments register on
// it. The caller must Close the returned file.
func OpenTrace(path string, ingest IngestFlags, reg *obs.Registry) (*os.File, *trace.Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	ro := ingest.ReaderOptions()
	if reg != nil {
		ro.Metrics = trace.NewMetrics(reg)
	}
	r, err := trace.NewReaderOptions(f, ro)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return f, r, nil
}

// DeriveFlags are the shared derivation-performance options of every
// tool that runs rule derivation.
type DeriveFlags struct {
	// Parallelism is the derivation worker count (core.Options
	// .Parallelism); 0 means GOMAXPROCS.
	Parallelism int
	// CPUProfile and MemProfile are pprof output paths; empty means
	// the respective profile is off.
	CPUProfile string
	MemProfile string
}

// Register installs the -j, -cpuprofile and -memprofile flags on fl.
func (f *DeriveFlags) Register(fl *flag.FlagSet) {
	fl.IntVar(&f.Parallelism, "j", 0,
		"derivation worker count (0 = GOMAXPROCS, 1 = sequential)")
	fl.StringVar(&f.CPUProfile, "cpuprofile", "",
		"write a pprof CPU profile of the run to this file")
	fl.StringVar(&f.MemProfile, "memprofile", "",
		"write a pprof heap profile to this file on exit")
}

// StartProfiles begins CPU profiling when -cpuprofile was given and
// returns a stop function that finishes the CPU profile and writes the
// heap profile when -memprofile was given. Call it once after flag
// parsing and run the stop function when the command's work is done:
//
//	stopProf, err := derive.StartProfiles()
//	if err != nil { return err }
//	defer func() {
//		if e := stopProf(); err == nil {
//			err = e
//		}
//	}()
//
// The stop function is safe to call when no profiling was requested.
func (f DeriveFlags) StartProfiles() (stop func() error, err error) {
	var cpuOut *os.File
	if f.CPUProfile != "" {
		cpuOut, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				return err
			}
		}
		if f.MemProfile == "" {
			return nil
		}
		memOut, err := os.Create(f.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC() // settle allocation accounting before the snapshot
		if err := pprof.WriteHeapProfile(memOut); err != nil {
			memOut.Close()
			return err
		}
		return memOut.Close()
	}, nil
}

// Apply stamps the flag values onto derivation options.
func (f DeriveFlags) Apply(opt core.Options) core.Options {
	opt.Parallelism = f.Parallelism
	return opt
}

// DeriveAll is the shared derivation entry point of the lockdoc-*
// commands: core.DeriveAll, which shards the observation groups over
// opt.Parallelism workers (sequentially for Parallelism 1) and stops
// at the next group boundary with ctx.Err() when ctx is cancelled.
func DeriveAll(ctx context.Context, d *db.DB, opt core.Options) ([]core.Result, error) {
	return core.DeriveAll(ctx, d, opt)
}

// StreamDerive is the fused import+derive entry point: it decodes the
// trace at path into a fresh store through a core.StreamDeriver, which
// mines speculative snapshots on a background worker while later sync
// blocks are still decoding, then runs the definitive pass. The
// returned view and results are byte-identical to OpenDB + DeriveAll
// of the same file (the view is a sealed snapshot; render and
// RecoveredFromDB accept it unchanged), but on a multi-core box the
// wall time approaches max(decode, mine) instead of their sum.
func StreamDerive(ctx context.Context, path string, opts Options, opt core.Options) (*db.DB, []core.Result, core.StreamStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, core.StreamStats{}, err
	}
	defer f.Close()
	ro := opts.Ingest.ReaderOptions()
	if opts.Obs != nil {
		ro.Metrics = trace.NewMetrics(opts.Obs)
	}
	r, err := trace.NewReaderOptions(f, ro)
	if err != nil {
		return nil, nil, core.StreamStats{}, fmt.Errorf("reading %s: %w", path, err)
	}
	sd := core.NewStreamDeriver(db.New(ImportConfig(opts)), opt)
	defer sd.Close()
	if _, err := sd.Consume(r); err != nil {
		return nil, nil, core.StreamStats{}, err
	}
	return sd.Derive(ctx)
}

// ObsFlags are the shared observability options of every lockdoc-*
// command: a whole-run deadline, an end-of-run metrics dump, and the
// opt-in debug listener (Prometheus /metrics + net/http/pprof).
type ObsFlags struct {
	// Timeout bounds the whole run; 0 means no deadline.
	Timeout time.Duration
	// Dump selects the end-of-run metrics rendering on stderr:
	// "none" (default), "prom", or "json".
	Dump string
	// DebugAddr starts the debug HTTP listener when non-empty.
	DebugAddr string

	reg    *obs.Registry
	sink   obs.Sink
	debug  *obs.DebugServer
	cancel context.CancelFunc
}

// Register installs the -timeout, -obs-dump and -debug-addr flags.
func (f *ObsFlags) Register(fl *flag.FlagSet) {
	fl.DurationVar(&f.Timeout, "timeout", 0,
		"abort the run after this duration (0 = no deadline)")
	fl.StringVar(&f.Dump, "obs-dump", "none",
		"dump pipeline metrics to stderr on exit: none, prom, or json")
	fl.StringVar(&f.DebugAddr, "debug-addr", "",
		"serve /metrics and /debug/pprof on this address (empty = off)")
}

// enabled reports whether any metric consumer was requested; without
// one, Registry stays nil and the pipeline's instruments compile to
// nil-receiver no-ops.
func (f *ObsFlags) enabled() bool {
	return (f.Dump != "" && f.Dump != "none" && f.Dump != "nop") || f.DebugAddr != ""
}

// Registry returns the registry pipeline stages should register their
// instruments on — nil unless -obs-dump or -debug-addr asked for one,
// so an unobserved run pays only nil checks.
func (f *ObsFlags) Registry() *obs.Registry {
	if f.reg == nil && f.enabled() {
		f.reg = obs.NewRegistry()
	}
	return f.reg
}

// Start validates the flags and activates them: the returned context
// carries the -timeout deadline, and the -debug-addr listener is
// brought up (its actual address is logged to stderr, useful with
// ":0"). Call Finish when the command's work is done.
func (f *ObsFlags) Start(ctx context.Context, stderr io.Writer) (context.Context, error) {
	sink, err := obs.NewSink(f.Dump)
	if err != nil {
		return ctx, err
	}
	f.sink = sink
	if f.Timeout > 0 {
		ctx, f.cancel = context.WithTimeout(ctx, f.Timeout)
	}
	if f.DebugAddr != "" {
		f.debug, err = obs.ServeDebug(f.DebugAddr, f.Registry())
		if err != nil {
			return ctx, err
		}
		fmt.Fprintf(stderr, "debug listener on http://%s (/metrics, /debug/pprof)\n", f.debug.Addr)
	}
	return ctx, nil
}

// Finish stops the debug listener, releases the timeout, and renders
// the -obs-dump metrics to stderr. Safe to call after a failed Start.
func (f *ObsFlags) Finish(stderr io.Writer) error {
	if f.cancel != nil {
		f.cancel()
	}
	if err := f.debug.Close(); err != nil {
		return err
	}
	if f.sink == nil || f.reg == nil {
		return nil
	}
	return f.sink.Write(stderr, f.reg.Gather())
}

// FollowFlags are the shared tail-follow options of every tool that can
// keep watching a growing trace.
type FollowFlags struct {
	// Follow enables tail-follow mode: the tool re-emits its analysis
	// after every poll that found appended events.
	Follow bool
	// Interval is the poll interval.
	Interval time.Duration
	// Polls bounds the number of polls; 0 means follow until
	// interrupted. Non-interactive callers (tests, one-shot scripts)
	// use it to terminate deterministically.
	Polls int
	// RetryAttempts and RetryBase shape the transient-I/O retry policy
	// of the follower: up to RetryAttempts tries per read/stat with
	// capped exponential backoff starting at RetryBase. Transient
	// failures retried this way are never charged against the
	// -max-errors corruption budget. RetryAttempts <= 1 disables
	// retrying.
	RetryAttempts int
	RetryBase     time.Duration
	// StoreDir, when non-empty, persists the followed trace into a
	// segment store as it grows: every committed sync block lands in a
	// trace segment before its events are consumed, and the compacted
	// state is refreshed after every emit, so a crash mid-follow leaves
	// a store that lockdocd -store-dir reopens without re-importing.
	StoreDir string
	// PushURL, when non-empty, mirrors the followed trace into a
	// running lockdocd at this base URL: the first committed sync-block
	// range replaces the target namespace's trace, every later range is
	// appended, so the daemon tracks the file block for block.
	PushURL string
	// PushNs is the lockdocd namespace -push uploads into; empty means
	// the default namespace (the legacy /v1/traces route).
	PushNs string
}

// Register installs the -follow, -interval, -follow-polls,
// -retry-attempts and -retry-base flags.
func (f *FollowFlags) Register(fl *flag.FlagSet) {
	fl.BoolVar(&f.Follow, "follow", false,
		"tail the growing trace file and refresh the analysis after each append (v2 traces only)")
	fl.DurationVar(&f.Interval, "interval", 500*time.Millisecond,
		"poll interval in -follow mode")
	fl.IntVar(&f.Polls, "follow-polls", 0,
		"stop -follow mode after this many polls (0 = run until interrupted)")
	fl.IntVar(&f.RetryAttempts, "retry-attempts", 4,
		"tries per transient I/O failure in -follow mode (1 = no retry); retries are not charged against -max-errors")
	fl.DurationVar(&f.RetryBase, "retry-base", 10*time.Millisecond,
		"initial backoff before a transient-I/O retry (doubles per retry, capped, jittered)")
	fl.StringVar(&f.StoreDir, "store-dir", "",
		"persist the followed trace and its compacted state into this segment store directory")
	fl.StringVar(&f.PushURL, "push", "",
		"mirror the followed trace into the lockdocd at this base URL (first commit replaces, later commits append)")
	fl.StringVar(&f.PushNs, "push-ns", "",
		"lockdocd namespace -push uploads into (empty = the default namespace)")
}

// Backoff converts the retry flags to a resilience policy.
func (f FollowFlags) Backoff(reg *obs.Registry) resilience.Backoff {
	return resilience.Backoff{
		Attempts: f.RetryAttempts,
		Base:     f.RetryBase,
		Max:      time.Second,
		Jitter:   0.5,
		Metrics:  resilience.NewMetrics(reg),
	}
}

// Follow tails the trace at path with the evaluation's filter
// configuration: each poll decodes only the bytes appended since the
// last one (resuming transaction reconstruction from the live
// per-context state) through a fused core.StreamDeriver, and emit is
// called with a sealed snapshot, the derived rules and the window's
// streaming statistics — once after the initial read, then again after
// every poll that appended events. appended is the event count of the
// poll. The results are byte-identical to a batch import + DeriveAll
// of the file's current contents: between emits the deriver mines
// speculative snapshots in the background, and each emit's definitive
// pass re-mines only what speculation has not already covered, so
// stats.Delta.Remined reflects the groups the window actually touched.
// Follow returns when emit fails, the poll budget is exhausted, or ctx
// is cancelled (Main cancels it on SIGINT/SIGTERM, so -follow exits
// promptly, even mid-poll); like OpenDB-based commands it reports
// accumulated corruption as *Recovered.
func Follow(ctx context.Context, path string, opts Options, ff FollowFlags, opt core.Options, emit func(view *db.DB, results []core.Result, stats core.StreamStats, appended int) error) error {
	ro := opts.Ingest.ReaderOptions()
	if opts.Obs != nil {
		ro.Metrics = trace.NewMetrics(opts.Obs)
	}
	fw, err := trace.NewFollower(path, ro)
	if err != nil {
		return err
	}
	defer fw.Close()
	fw.SetRetry(ff.Backoff(opts.Obs))
	var store *segstore.Store
	var sinks blockSinks
	if ff.StoreDir != "" {
		store, err = segstore.Open(ff.StoreDir, segstore.Options{Metrics: segstore.NewMetrics(opts.Obs)})
		if err != nil {
			return err
		}
		defer store.Close()
		// The follower re-reads the file from the start, so the first
		// commit replaces whatever trace a previous run left behind;
		// later commits extend it. Sink failures poison the follower,
		// which keeps the store a strict prefix of what was consumed.
		sinks = append(sinks, &followStoreSink{store: store})
	}
	if ff.PushURL != "" {
		c := apiclient.New(ff.PushURL, apiclient.WithBackoff(ff.Backoff(opts.Obs)))
		if ff.PushNs != "" {
			c = c.Namespace(ff.PushNs)
		}
		// Same replace-then-append protocol as the store sink, over HTTP:
		// a push failure (after the client's retries) poisons the
		// follower, so the daemon's copy stays a strict prefix too.
		sinks = append(sinks, &followPushSink{ctx: ctx, c: c})
	}
	switch len(sinks) {
	case 0:
	case 1:
		fw.SetSink(sinks[0])
	default:
		fw.SetSink(sinks)
	}
	cfg := fs.DefaultConfig()
	if opts.NoFilter {
		cfg = db.Config{SubclassedTypes: cfg.SubclassedTypes}
	}
	cfg.Lenient = opts.Ingest.Lenient
	if opts.Obs != nil {
		cfg.Metrics = db.NewMetrics(opts.Obs)
	}
	sd := core.NewStreamDeriver(db.New(cfg), opt)
	defer sd.Close()

	emitted := false
	for polls := 0; ; polls++ {
		n, err := fw.Poll(ctx, func(ev *trace.Event) error { return sd.Add(ev) })
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Interrupted mid-poll: the uncommitted tail re-reads on
				// the next run; report what this run recovered from.
				return recoveredFromFollow(fw, sd.Live())
			}
			return err
		}
		if n > 0 || !emitted {
			emitted = true
			view, results, stats, err := sd.Derive(ctx)
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return recoveredFromFollow(fw, sd.Live())
				}
				return err
			}
			if store != nil {
				// Refresh the compacted state before emitting so a crash
				// after this point reopens to the snapshot just served.
				if err := store.Compact(view); err != nil {
					return fmt.Errorf("compacting into %s: %w", ff.StoreDir, err)
				}
			}
			if err := emit(view, results, stats, n); err != nil {
				return err
			}
		}
		if ff.Polls > 0 && polls+1 >= ff.Polls {
			break
		}
		select {
		case <-ctx.Done():
			return recoveredFromFollow(fw, sd.Live())
		case <-time.After(ff.Interval):
		}
	}
	return recoveredFromFollow(fw, sd.Live())
}

// followStoreSink adapts a segment store to trace.BlockSink for the
// -follow -store-dir combination: the first committed range (which
// starts at byte 0 of the file, header included) resets the store's
// trace chain, every later range appends bare continuation blocks.
type followStoreSink struct {
	store *segstore.Store
	reset bool
}

func (k *followStoreSink) CommitBlocks(raw []byte) error {
	if !k.reset {
		k.reset = true
		return k.store.ResetTrace(raw)
	}
	return k.store.AppendTrace(raw)
}

// followPushSink mirrors committed sync-block ranges into a lockdocd
// over the typed API client: first commit replaces the namespace's
// trace, later commits append continuations.
type followPushSink struct {
	ctx   context.Context
	c     *apiclient.Client
	reset bool
}

func (k *followPushSink) CommitBlocks(raw []byte) error {
	if !k.reset {
		k.reset = true
		_, err := k.c.Upload(k.ctx, raw)
		return err
	}
	_, err := k.c.Append(k.ctx, raw)
	return err
}

// blockSinks fans one committed range out to several sinks in order,
// stopping at the first failure.
type blockSinks []trace.BlockSink

func (ks blockSinks) CommitBlocks(raw []byte) error {
	for _, k := range ks {
		if err := k.CommitBlocks(raw); err != nil {
			return err
		}
	}
	return nil
}

// recoveredFromFollow is RecoveredFromDB for the tail-follow loop: the
// follower owns the reader-side corruption state, the live store the
// import-side drop counters.
func recoveredFromFollow(fw *trace.Follower, live *db.DB) error {
	if len(fw.Corruptions()) == 0 && live.DroppedEvents() == 0 {
		return nil
	}
	return &Recovered{
		Reports:      fw.Corruptions(),
		BytesSkipped: fw.BytesSkipped(),
		Dropped:      live.DroppedEvents(),
	}
}

// CollectStats re-reads the trace for aggregate event statistics.
func CollectStats(path string) (trace.Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Stats{}, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return trace.Stats{}, err
	}
	return trace.Collect(r)
}
