// Package cli bundles the small amount of plumbing the lockdoc-*
// commands share: opening a trace file into the post-processing store.
package cli

import (
	"fmt"
	"os"

	"lockdoc/internal/db"
	"lockdoc/internal/fs"
	"lockdoc/internal/trace"
)

// OpenDB imports the trace at path with the evaluation's filter
// configuration (fs.DefaultConfig). noFilter disables the function and
// member black lists but keeps inode subclassing.
func OpenDB(path string, noFilter bool) (*db.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	cfg := fs.DefaultConfig()
	if noFilter {
		cfg = db.Config{SubclassedTypes: cfg.SubclassedTypes}
	}
	return db.Import(r, cfg)
}

// CollectStats re-reads the trace for aggregate event statistics.
func CollectStats(path string) (trace.Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.Stats{}, err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return trace.Stats{}, err
	}
	return trace.Collect(r)
}
