package cli

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lockdoc/internal/apiclient"
	"lockdoc/internal/core"
	"lockdoc/internal/db"
	"lockdoc/internal/segstore"
	"lockdoc/internal/server"
	"lockdoc/internal/trace"
	"lockdoc/internal/workload"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.lkdc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.RunClockExample(w, 1, 200); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenDBRoundTrip(t *testing.T) {
	path := writeTrace(t)
	d, err := OpenDB(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.RawAccesses == 0 {
		t.Error("no accesses imported")
	}
	if _, ok := d.Group("clock", "", "minutes", true); !ok {
		t.Error("clock observations missing")
	}
}

func TestOpenDBNoFilter(t *testing.T) {
	path := writeTrace(t)
	d, err := OpenDB(path, Options{NoFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.FilteredAccesses != 0 {
		t.Errorf("nofilter import filtered %d accesses", d.FilteredAccesses)
	}
}

func TestOpenDBMissingFile(t *testing.T) {
	if _, err := OpenDB(filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestOpenDBCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDB(path, Options{}); err == nil {
		t.Error("expected error for corrupt file")
	}
}

// corruptTrace writes a clock trace and flips a bit inside one of its
// v2 block payloads (well past the header and first definitions).
func corruptTrace(t *testing.T) string {
	t.Helper()
	path := writeTrace(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[3*len(raw)/4] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenDBLenientRecovers(t *testing.T) {
	path := corruptTrace(t)
	if _, err := OpenDB(path, Options{}); err == nil {
		t.Fatal("strict OpenDB accepted a corrupt trace")
	}
	d, err := OpenDB(path, Options{Ingest: IngestFlags{Lenient: true, MaxErrors: 10}})
	if err != nil {
		t.Fatalf("lenient OpenDB: %v", err)
	}
	if len(d.Corruptions) == 0 {
		t.Error("lenient import reported no corruption")
	}
	rec := RecoveredFromDB(d)
	if rec == nil {
		t.Fatal("RecoveredFromDB = nil for a degraded import")
	}
	var r *Recovered
	if !errors.As(rec, &r) || len(r.Reports) == 0 {
		t.Fatalf("RecoveredFromDB = %v, want *Recovered with reports", rec)
	}
}

func TestRecoveredFromDBCleanIsNil(t *testing.T) {
	d, err := OpenDB(writeTrace(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec := RecoveredFromDB(d); rec != nil {
		t.Errorf("RecoveredFromDB = %v for a clean import", rec)
	}
}

// TestRunExitCodes pins the exit-code contract of the run() pattern.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"clean", nil, ExitClean},
		{"fatal", errors.New("boom"), ExitFatal},
		{"recovered", &Recovered{Dropped: 3}, ExitRecovered},
		{"usage", errBadFlags, ExitUsage},
	}
	for _, tc := range cases {
		var stderr bytes.Buffer
		fn := func(ctx context.Context, args []string, stdout, errw io.Writer) error { return tc.err }
		if got := Run(context.Background(), "tool", fn, nil, io.Discard, &stderr); got != tc.want {
			t.Errorf("%s: Run = %d, want %d", tc.name, got, tc.want)
		}
		if tc.want == ExitRecovered && !strings.Contains(stderr.String(), "recovered corruption") {
			t.Errorf("recovered run printed %q, want corruption summary", stderr.String())
		}
	}
	// Cancellation maps to ExitFatal with a terse diagnostic, not a
	// stack of wrapped errors.
	var stderr bytes.Buffer
	fn := func(ctx context.Context, args []string, stdout, errw io.Writer) error {
		return context.Canceled
	}
	if got := Run(context.Background(), "tool", fn, nil, io.Discard, &stderr); got != ExitFatal {
		t.Errorf("cancelled run: Run = %d, want %d", got, ExitFatal)
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("cancelled run printed %q, want interrupted", stderr.String())
	}
}

func TestFlagsParseErrorsMapToUsage(t *testing.T) {
	fn := func(ctx context.Context, args []string, stdout, errw io.Writer) error {
		fl := Flags("tool", errw)
		_ = fl.Bool("ok", false, "")
		if err := Parse(fl, args); err != nil {
			return err
		}
		return nil
	}
	if got := Run(context.Background(), "tool", fn, []string{"-definitely-not-a-flag"}, io.Discard, io.Discard); got != ExitUsage {
		t.Errorf("bad flag: Run = %d, want %d", got, ExitUsage)
	}
	if got := Run(context.Background(), "tool", fn, []string{"-h"}, io.Discard, io.Discard); got != ExitClean {
		t.Errorf("-h: Run = %d, want %d", got, ExitClean)
	}
}

func TestCollectStats(t *testing.T) {
	path := writeTrace(t)
	stats, err := CollectStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.LockOps == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestDeriveFlagsApply(t *testing.T) {
	fl := Flags("tool", io.Discard)
	var df DeriveFlags
	df.Register(fl)
	if err := Parse(fl, []string{"-j", "3"}); err != nil {
		t.Fatal(err)
	}
	opt := df.Apply(core.Options{AcceptThreshold: 0.8})
	if opt.Parallelism != 3 {
		t.Errorf("Parallelism = %d, want 3", opt.Parallelism)
	}
	if opt.AcceptThreshold != 0.8 {
		t.Errorf("Apply clobbered AcceptThreshold: %v", opt.AcceptThreshold)
	}
}

// DeriveAll must agree with the sequential reference implementation —
// the CLIs and lockdocd route all derivation through it.
func TestDeriveAllMatchesSequential(t *testing.T) {
	d, err := OpenDB(writeTrace(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{AcceptThreshold: 0.9, Parallelism: 4}
	got, err := DeriveAll(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	seq := opt
	seq.Parallelism = 1
	want, err := core.DeriveAll(context.Background(), d, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Group != want[i].Group {
			t.Fatalf("result %d: group mismatch", i)
		}
		gw, ww := got[i].Winner, want[i].Winner
		if (gw == nil) != (ww == nil) {
			t.Fatalf("result %d: winner presence mismatch", i)
		}
		if gw != nil && (d.SeqString(gw.Seq) != d.SeqString(ww.Seq) || gw.Sa != ww.Sa || gw.Sr != ww.Sr) {
			t.Fatalf("result %d: winner mismatch", i)
		}
	}
}

// TestObsFlagsDisabledByDefault: without -obs-dump or -debug-addr the
// registry stays nil, so pipeline instruments compile to no-ops.
func TestObsFlagsDisabledByDefault(t *testing.T) {
	fl := Flags("tool", io.Discard)
	var of ObsFlags
	of.Register(fl)
	if err := Parse(fl, nil); err != nil {
		t.Fatal(err)
	}
	if of.Registry() != nil {
		t.Error("Registry() non-nil without any metric consumer")
	}
	ctx, err := of.Start(context.Background(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.Deadline(); ok {
		t.Error("Start installed a deadline without -timeout")
	}
	var stderr bytes.Buffer
	if err := of.Finish(&stderr); err != nil {
		t.Fatal(err)
	}
	if stderr.Len() != 0 {
		t.Errorf("Finish dumped %q without -obs-dump", stderr.String())
	}
}

func TestObsFlagsTimeoutAndDump(t *testing.T) {
	fl := Flags("tool", io.Discard)
	var of ObsFlags
	of.Register(fl)
	if err := Parse(fl, []string{"-timeout", "1h", "-obs-dump", "prom"}); err != nil {
		t.Fatal(err)
	}
	reg := of.Registry()
	if reg == nil {
		t.Fatal("Registry() nil with -obs-dump set")
	}
	reg.Counter("tool_probe_total", "test counter").Add(7)
	ctx, err := of.Start(context.Background(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.Deadline(); !ok {
		t.Error("-timeout did not install a deadline")
	}
	var stderr bytes.Buffer
	if err := of.Finish(&stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "tool_probe_total 7") {
		t.Errorf("-obs-dump=prom output missing counter:\n%s", stderr.String())
	}
}

func TestObsFlagsBadDumpFormat(t *testing.T) {
	of := ObsFlags{Dump: "xml"}
	if _, err := of.Start(context.Background(), io.Discard); err == nil {
		t.Error("Start accepted -obs-dump=xml")
	}
}

// TestObsFlagsDebugServer brings up -debug-addr on an ephemeral port
// and fetches /metrics and a pprof profile through it.
func TestObsFlagsDebugServer(t *testing.T) {
	of := ObsFlags{Dump: "none", DebugAddr: "127.0.0.1:0"}
	of.Registry().Counter("tool_probe_total", "test counter").Inc()
	var stderr bytes.Buffer
	if _, err := of.Start(context.Background(), &stderr); err != nil {
		t.Fatal(err)
	}
	defer of.Finish(io.Discard)
	if !strings.Contains(stderr.String(), "debug listener on http://") {
		t.Errorf("Start did not log the debug address: %q", stderr.String())
	}
	addr := of.debug.Addr
	for _, path := range []string{"/metrics", "/debug/pprof/cmdline"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// TestFollowStoreDir follows a growing trace with a segment store
// attached: the initial read must reset the store's trace chain, the
// appended tail must extend it, and after the follow loop ends the
// store must reopen — without the original file — to the compacted
// state that the last emit served.
func TestFollowStoreDir(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriterOptions(&buf, trace.WriterOptions{Version: trace.FormatV2, SyncInterval: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.RunClockExample(w, 1, 400); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	needle := []byte{0xFF, 'L', 'K', 'S', 'Y'}
	var offs []int
	for i := 0; i+len(needle) <= len(raw); i++ {
		if bytes.Equal(raw[i:i+len(needle)], needle) {
			offs = append(offs, i)
		}
	}
	if len(offs) < 3 {
		t.Fatalf("fixture has %d sync blocks, want >= 3", len(offs))
	}
	cut := offs[2] // block boundary: first two blocks complete

	path := filepath.Join(t.TempDir(), "trace.lkdc")
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	storeDir := filepath.Join(t.TempDir(), "store")

	errStop := errors.New("done following")
	var want bytes.Buffer
	grown := false
	err = Follow(context.Background(), path, Options{},
		FollowFlags{Interval: time.Millisecond, StoreDir: storeDir}, core.Options{},
		func(view *db.DB, results []core.Result, stats core.StreamStats, appended int) error {
			if !grown {
				grown = true
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					return err
				}
				if _, err := f.Write(raw[cut:]); err != nil {
					return err
				}
				return f.Close()
			}
			if err := view.ExportObservationsCSV(&want); err != nil {
				return err
			}
			return errStop
		})
	if !errors.Is(err, errStop) {
		t.Fatalf("Follow returned %v, want the stop sentinel", err)
	}
	if want.Len() == 0 {
		t.Fatal("second emit captured no observations")
	}

	// Reopen the store alone: the compacted state must reproduce the
	// last emitted snapshot byte for byte.
	store, err := segstore.Open(storeDir, segstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	d, ok, err := store.LoadState()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("store has no compacted state after follow")
	}
	var got bytes.Buffer
	if err := d.ExportObservationsCSV(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("store-backed CSV (%d bytes) differs from followed snapshot (%d bytes)", got.Len(), want.Len())
	}

	// And the trace chain must hold the whole file: replaying it gives
	// the same events as reading the original.
	r := trace.NewContinuationReader(store.TraceReader(), trace.ReaderOptions{})
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	fr, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fevs, err := fr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(fevs) {
		t.Fatalf("store trace replays %d events, file has %d", len(evs), len(fevs))
	}
}

// TestFollowCancelled pins the prompt-exit contract: cancelling the
// context from inside the emit callback ends the follow loop cleanly
// instead of waiting out the poll interval or spinning forever.
func TestFollowCancelled(t *testing.T) {
	path := writeTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emits := 0
	done := make(chan error, 1)
	go func() {
		done <- Follow(ctx, path, Options{}, FollowFlags{Interval: time.Millisecond}, core.Options{},
			func(view *db.DB, results []core.Result, stats core.StreamStats, appended int) error {
				emits++
				cancel()
				return nil
			})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled Follow returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Follow did not exit after cancellation")
	}
	if emits != 1 {
		t.Errorf("emit ran %d times, want 1", emits)
	}
}

// TestFollowPush follows a growing trace with -push attached: the
// initial read must land in the target lockdocd namespace as a replace,
// the appended tail as an append, and when the loop ends the daemon's
// namespace must serve a document identical to one built from a direct
// upload of the whole file.
func TestFollowPush(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriterOptions(&buf, trace.WriterOptions{Version: trace.FormatV2, SyncInterval: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.RunClockExample(w, 1, 400); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	needle := []byte{0xFF, 'L', 'K', 'S', 'Y'}
	var offs []int
	for i := 0; i+len(needle) <= len(raw); i++ {
		if bytes.Equal(raw[i:i+len(needle)], needle) {
			offs = append(offs, i)
		}
	}
	if len(offs) < 3 {
		t.Fatalf("fixture has %d sync blocks, want >= 3", len(offs))
	}
	cut := offs[2]

	path := filepath.Join(t.TempDir(), "trace.lkdc")
	if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx := context.Background()

	errStop := errors.New("done following")
	grown := false
	err = Follow(ctx, path, Options{},
		FollowFlags{Interval: time.Millisecond, PushURL: ts.URL, PushNs: "mirror"}, core.Options{},
		func(view *db.DB, results []core.Result, stats core.StreamStats, appended int) error {
			if !grown {
				grown = true
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					return err
				}
				if _, err := f.Write(raw[cut:]); err != nil {
					return err
				}
				return f.Close()
			}
			return errStop
		})
	if !errors.Is(err, errStop) {
		t.Fatalf("Follow returned %v, want the stop sentinel", err)
	}

	c := apiclient.New(ts.URL)
	info, err := c.NamespaceInfo(ctx, "mirror")
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation < 2 {
		t.Fatalf("mirror namespace generation = %d, want a replace plus >= 1 append", info.Generation)
	}

	// An oracle fed the whole file in one upload must serve the same
	// document the mirrored namespace does. The daemon imports with its
	// own filter configuration, so the oracle goes through the same API.
	oracle := server.New(server.Config{})
	ot := httptest.NewServer(oracle.Handler())
	defer ot.Close()
	oc := apiclient.New(ot.URL)
	if _, err := oc.Upload(ctx, raw); err != nil {
		t.Fatal(err)
	}
	want, err := oc.Doc(ctx, "clock")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Namespace("mirror").Doc(ctx, "clock")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("pushed namespace document diverges from direct upload:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
