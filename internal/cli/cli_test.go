package cli

import (
	"os"
	"path/filepath"
	"testing"

	"lockdoc/internal/trace"
	"lockdoc/internal/workload"
)

func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.lkdc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.RunClockExample(w, 1, 200); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenDBRoundTrip(t *testing.T) {
	path := writeTrace(t)
	d, err := OpenDB(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.RawAccesses == 0 {
		t.Error("no accesses imported")
	}
	if _, ok := d.Group("clock", "", "minutes", true); !ok {
		t.Error("clock observations missing")
	}
}

func TestOpenDBNoFilter(t *testing.T) {
	path := writeTrace(t)
	d, err := OpenDB(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.FilteredAccesses != 0 {
		t.Errorf("nofilter import filtered %d accesses", d.FilteredAccesses)
	}
}

func TestOpenDBMissingFile(t *testing.T) {
	if _, err := OpenDB(filepath.Join(t.TempDir(), "nope"), false); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestOpenDBCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDB(path, false); err == nil {
		t.Error("expected error for corrupt file")
	}
}

func TestCollectStats(t *testing.T) {
	path := writeTrace(t)
	stats, err := CollectStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.LockOps == 0 {
		t.Errorf("stats = %+v", stats)
	}
}
