package kvstore

import (
	"fmt"

	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
	"lockdoc/internal/sched"
	"lockdoc/internal/trace"
)

// Options configures a traced key-value workload run.
type Options struct {
	Seed         int64
	Clients      int // concurrent client threads
	OpsPerClient int
	CacheSize    int
	PreemptEvery int
}

// DefaultOptions returns a small but contended configuration.
func DefaultOptions() Options {
	return Options{Seed: 42, Clients: 4, OpsPerClient: 300, CacheSize: 64, PreemptEvery: 31}
}

// Run boots the store, drives the client mix and shuts down. The trace
// is written to w and is consumable by the unchanged LockDoc pipeline.
func Run(w *trace.Writer, opt Options) (*kernel.Kernel, error) {
	if opt.Clients <= 0 {
		opt.Clients = 1
	}
	s := sched.New(opt.Seed, opt.PreemptEvery)
	k := kernel.New(s, w)
	d := locks.NewDomain(k)
	s.DeadlockInfo = d.DescribeHeld
	store := New(k, d, opt.CacheSize)

	k.Go("main", func(c *kernel.Context) {
		store.InitStats(c)
		for client := 0; client < opt.Clients; client++ {
			id := uint64(client)
			k.Go(fmt.Sprintf("client-%d", client), func(c *kernel.Context) {
				conn := store.NewConn(c, id)
				keySpace := uint64(opt.CacheSize * 3) // force evictions
				for op := 0; op < opt.OpsPerClient; op++ {
					key := uint64(k.Sched.Rand(int(keySpace)))
					switch k.Sched.Rand(10) {
					case 0, 1, 2: // SET
						store.Dispatch(c, conn, 1)
						store.Set(c, key, uint64(op)<<16|id)
					case 9: // DELETE
						store.Dispatch(c, conn, 3)
						store.Delete(c, key)
					default: // GET
						store.Dispatch(c, conn, 2)
						store.Get(c, key)
					}
				}
				store.CloseConn(c, conn)
			})
		}
	})
	s.Run()

	k.Go("shutdown", func(c *kernel.Context) {
		store.Shutdown(c)
	})
	s.Run()
	if err := k.Err(); err != nil {
		return k, err
	}
	return k, k.Finish()
}

// DocumentedRuleSpecs returns the store's documented locking rules in
// the checker's notation. Mirrors a README in the original project:
// entry content under e_lock, LRU membership under cache_lru_lock,
// connection state under c_lock, statistics under stats_lock.
type RuleSpecLite struct {
	Type   string
	Member string
	Write  bool
	Locks  []string
}

// DocumentedRuleSpecs enumerates the target's documented rules.
func DocumentedRuleSpecs() []RuleSpecLite {
	var out []RuleSpecLite
	add := func(typ, member, rw string, locks ...string) {
		for _, m := range rw {
			out = append(out, RuleSpecLite{Type: typ, Member: member, Write: m == 'w', Locks: locks})
		}
	}
	add("cache_entry", "e_value", "rw", "ES(cache_entry.e_lock)")
	add("cache_entry", "e_size", "w", "ES(cache_entry.e_lock)")
	add("cache_entry", "e_cas", "w", "ES(cache_entry.e_lock)")
	add("cache_entry", "e_hits", "w", "ES(cache_entry.e_lock)") // stale: hot path is lock-free
	add("cache_entry", "e_lru", "rw", "cache_lru_lock")         // evict path deviates
	add("cache_entry", "e_hash_next", "w", "cache_table_lock")
	add("conn", "c_state", "w", "ES(conn.c_lock)")
	add("conn", "c_last_cmd", "w", "ES(conn.c_lock)")
	add("conn", "c_reqs", "w", "ES(conn.c_lock)")
	add("conn", "c_wbuf", "w", "ES(conn.c_lock)")
	add("kv_stats", "st_gets", "w", "stats_lock")
	add("kv_stats", "st_sets", "w", "stats_lock")
	add("kv_stats", "st_hits", "w", "stats_lock")
	add("kv_stats", "st_evictions", "w", "stats_lock")
	return out
}
