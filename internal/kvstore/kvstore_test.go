package kvstore

import (
	"bytes"
	"context"
	"testing"

	"lockdoc/internal/analysis"
	"lockdoc/internal/core"
	"lockdoc/internal/db"
	"lockdoc/internal/lockdep"
	"lockdoc/internal/trace"
)

func runStore(t testing.TB, opt Options) (*db.DB, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Run(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if live := k.LiveAllocations(); live != 0 {
		t.Fatalf("%d allocations leaked", live)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Import(r, db.Config{FuncBlacklist: FuncBlacklist()})
	if err != nil {
		t.Fatal(err)
	}
	return d, buf.Bytes()
}

func TestStoreSemantics(t *testing.T) {
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Single client, deterministic op check via direct calls.
	opt := DefaultOptions()
	opt.Clients = 1
	opt.OpsPerClient = 50
	if _, err := Run(w, opt); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(w, DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("same seed produced different traces")
	}
}

// TestMinedRules checks that the unchanged pipeline mines the store's
// documented rules — the Sec. 8 generality claim.
func TestMinedRules(t *testing.T) {
	d, _ := runStore(t, DefaultOptions())
	results, _ := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	byKey := map[string]string{}
	srByKey := map[string]float64{}
	for _, r := range results {
		if r.Winner == nil {
			continue
		}
		key := r.Group.TypeLabel() + "." + r.Group.MemberName() + ":" + r.Group.AccessType()
		byKey[key] = d.SeqString(r.Winner.Seq)
		srByKey[key] = r.Winner.Sr
	}

	// Entry values: e_lock (nested under the table lock).
	if got := byKey["cache_entry.e_value:w"]; got != "cache_table_lock -> ES(e_lock in cache_entry)" {
		t.Errorf("e_value w winner = %q", got)
	}
	// Connection state: the per-connection mutex.
	if got := byKey["conn.c_last_cmd:w"]; got != "ES(c_lock in conn)" {
		t.Errorf("c_last_cmd w winner = %q", got)
	}
	// Statistics: the stats spinlock.
	if got := byKey["kv_stats.st_gets:w"]; got != "stats_lock" {
		t.Errorf("st_gets w winner = %q", got)
	}
	// The deviant e_hits bump never holds e_lock: its winner must not
	// contain the ES e_lock key (the checker flags the stale documented
	// rule; mining settles on the table lock that happens to be held).
	if got := byKey["cache_entry.e_hits:w"]; got == "" {
		t.Error("no e_hits write rule")
	} else if contains(got, "ES(e_lock in cache_entry)") {
		t.Errorf("e_hits w winner = %q, deviation invisible", got)
	}
	// e_lru: mostly lru_lock, deviant eviction path drags sr below 1.
	if sr := srByKey["cache_entry.e_lru:w"]; sr >= 1.0 {
		t.Errorf("e_lru w sr = %f, want < 1 (evict deviation)", sr)
	}
}

// TestDocumentedRulesChecked validates the store's documented corpus:
// the two stale rules must come out non-correct.
func TestDocumentedRulesChecked(t *testing.T) {
	d, _ := runStore(t, DefaultOptions())
	var nonCorrect []string
	for _, spec := range DocumentedRuleSpecs() {
		res, err := analysis.CheckRule(d, analysis.RuleSpec{
			Type: spec.Type, Member: spec.Member, Write: spec.Write, Locks: spec.Locks,
		})
		if err != nil {
			t.Fatalf("%s.%s: %v", spec.Type, spec.Member, err)
		}
		if res.Verdict == analysis.Ambivalent || res.Verdict == analysis.Incorrect {
			at := "r"
			if spec.Write {
				at = "w"
			}
			nonCorrect = append(nonCorrect, spec.Member+":"+at)
		}
	}
	wantStale := map[string]bool{"e_hits:w": false, "e_lru:w": false}
	for _, m := range nonCorrect {
		if _, ok := wantStale[m]; ok {
			wantStale[m] = true
		}
	}
	for m, seen := range wantStale {
		if !seen {
			t.Errorf("stale documented rule %s not flagged (non-correct: %v)", m, nonCorrect)
		}
	}
}

// TestViolationsLocated checks that the violation finder points at the
// eviction path's e_lru write.
func TestViolationsLocated(t *testing.T) {
	d, _ := runStore(t, DefaultOptions())
	results, _ := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	viols := analysis.FindViolations(d, results)
	found := false
	for _, ex := range analysis.Examples(d, viols, 50) {
		if ex.TypeMember == "cache_entry.e_lru" && contains(ex.Stack, "cache_evict") {
			found = true
		}
	}
	if !found {
		t.Error("eviction-path e_lru violation not located")
	}
}

func contains(s, sub string) bool {
	return bytes.Contains([]byte(s), []byte(sub))
}

// TestLockdepClean: the store's locking discipline is order-consistent
// (table -> entry/lru/stats), so the lockdep extension must find no
// inversions on this target.
func TestLockdepClean(t *testing.T) {
	_, raw := runStore(t, DefaultOptions())
	r, err := trace.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	g, err := lockdep.Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if invs := g.FindInversions(); len(invs) != 0 {
		t.Errorf("kvstore has %d lock-order inversions", len(invs))
	}
}

// TestCounterexampleCSV exports the violations and spot-checks the
// eviction-path row.
func TestCounterexampleCSV(t *testing.T) {
	d, _ := runStore(t, DefaultOptions())
	results, _ := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	viols := analysis.FindViolations(d, results)
	var buf bytes.Buffer
	if err := analysis.WriteCounterexamplesCSV(&buf, d, viols); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !contains(out, "cache_evict") || !contains(out, "e_lru") {
		t.Errorf("CSV lacks the eviction counterexample:\n%s", out)
	}
}
