// Package kvstore is a second instrumented target system, demonstrating
// the paper's closing claim that "the LockDoc approach is by no means
// specific to the Linux kernel and could be applied to other projects
// with concurrent control flows and huge numbers of locks" (Sec. 8).
//
// The target is a multi-threaded user-space key-value cache in the
// spirit of memcached: a hash table of cache entries protected by a
// global table lock, per-entry locks for value updates, an LRU list
// with its own lock, and per-connection state protected by a
// per-connection mutex. As with the simulated kernel, the code follows
// documented locking rules with deliberate deviations:
//
//   - entry value updates are documented as e_lock-protected, but the
//     hot GET path bumps e_hits with no lock (statistics race, benign
//     in the original, flagged by LockDoc),
//   - the LRU promotion on GET is documented lru_lock-protected, but
//     one eviction path edits e_lru holding only the table lock.
//
// Everything funnels through the same trace format, importer, derivator
// and analysis tools as the kernel target — no special casing anywhere.
package kvstore

import (
	"fmt"

	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
)

const (
	u32 = 4
	u64 = 8
)

// Store is the running cache.
type Store struct {
	K *kernel.Kernel
	D *locks.Domain

	EntryType *kernel.TypeInfo
	ConnType  *kernel.TypeInfo
	StatsType *kernel.TypeInfo

	TableLock *locks.Mutex    // protects the hash table structure
	LruLock   *locks.SpinLock // protects the LRU list
	StatsObj  *kernel.Object
	StatsLock *locks.SpinLock

	table   map[uint64]*Entry
	lru     []*Entry
	funcs   map[string]*kernel.FuncInfo
	maxSize int
}

// Entry is one cache entry (struct cache_entry).
type Entry struct {
	Obj   *kernel.Object
	ELock *locks.SpinLock
	Key   uint64
}

// Conn is one client connection (struct conn).
type Conn struct {
	Obj   *kernel.Object
	CLock *locks.Mutex
	ID    uint64
}

// New wires the store's types, locks and function corpus.
func New(k *kernel.Kernel, d *locks.Domain, maxSize int) *Store {
	s := &Store{
		K: k, D: d, table: make(map[uint64]*Entry),
		funcs: make(map[string]*kernel.FuncInfo), maxSize: maxSize,
	}
	s.EntryType = k.Register(kernel.NewType("cache_entry").
		Field("e_key", u64).
		Field("e_value", u64).
		Field("e_size", u32).
		Field("e_flags", u32).
		Lock("e_lock", u32). // filtered
		Field("e_hits", u32).
		Field("e_lru", u64).
		Field("e_hash_next", u64).
		Field("e_cas", u64).
		Field("e_expiry", u64))
	s.ConnType = k.Register(kernel.NewType("conn").
		Field("c_state", u32).
		Field("c_fd", u32).
		Lock("c_lock", u64). // filtered
		Field("c_rbuf", u64).
		Field("c_wbuf", u64).
		Field("c_last_cmd", u32).
		Field("c_reqs", u32))
	s.StatsType = k.Register(kernel.NewType("kv_stats").
		Field("st_gets", u64).
		Field("st_sets", u64).
		Field("st_hits", u64).
		Field("st_evictions", u64))

	s.TableLock = d.Mutex("cache_table_lock")
	s.LruLock = d.Spin("cache_lru_lock")
	s.StatsLock = d.Spin("stats_lock")

	for _, def := range []struct {
		file  string
		line  uint32
		name  string
		lines uint32
	}{
		{"kv/cache.c", 40, "entry_alloc", 25},
		{"kv/cache.c", 90, "entry_free", 15},
		{"kv/cache.c", 130, "cache_get", 45},
		{"kv/cache.c", 200, "cache_set", 50},
		{"kv/cache.c", 280, "cache_delete", 30},
		{"kv/cache.c", 330, "cache_evict", 40},
		{"kv/cache.c", 390, "lru_promote", 20},
		{"kv/conn.c", 30, "conn_new", 20},
		{"kv/conn.c", 70, "conn_close", 15},
		{"kv/conn.c", 100, "conn_dispatch", 35},
		{"kv/stats.c", 20, "stats_bump", 12},
		{"kv/cache.c", 440, "cache_flush_all", 30}, // cold
		{"kv/conn.c", 150, "conn_timeout", 25},     // cold
	} {
		s.funcs[def.name] = k.Func(def.file, def.line, def.name, def.lines)
	}
	return s
}

func (s *Store) fn(name string) *kernel.FuncInfo {
	f, ok := s.funcs[name]
	if !ok {
		panic(fmt.Sprintf("kvstore: unregistered function %q", name))
	}
	return f
}

func (s *Store) call(c *kernel.Context, name string) func() {
	f := s.fn(name)
	c.Enter(f)
	return func() { c.Exit(f) }
}

// InitStats allocates the global statistics object.
func (s *Store) InitStats(c *kernel.Context) {
	s.StatsObj = s.K.Alloc(c, s.StatsType, "")
}

// FuncBlacklist returns the target's init/teardown functions.
func FuncBlacklist() []string {
	return []string{"entry_alloc", "entry_free", "conn_new", "conn_close"}
}

func (e *Entry) set(c *kernel.Context, m string, v uint64) {
	e.Obj.Store(c, e.Obj.Typ.MemberIndex(m), v)
}
func (e *Entry) get(c *kernel.Context, m string) uint64 {
	return e.Obj.Load(c, e.Obj.Typ.MemberIndex(m))
}

// NewConn opens a connection (conn_new is black-listed init).
func (s *Store) NewConn(c *kernel.Context, id uint64) *Conn {
	conn := &Conn{ID: id}
	conn.Obj = s.K.Alloc(c, s.ConnType, "")
	conn.CLock = s.D.MutexIn(conn.Obj, "c_lock")
	defer s.call(c, "conn_new")()
	c.Cover(3)
	conn.Obj.Store(c, conn.Obj.Typ.MemberIndex("c_state"), 1)
	conn.Obj.Store(c, conn.Obj.Typ.MemberIndex("c_fd"), id+100)
	conn.Obj.Store(c, conn.Obj.Typ.MemberIndex("c_reqs"), 0)
	return conn
}

// CloseConn tears a connection down.
func (s *Store) CloseConn(c *kernel.Context, conn *Conn) {
	defer s.call(c, "conn_close")()
	c.Cover(2)
	conn.Obj.Store(c, conn.Obj.Typ.MemberIndex("c_state"), 0)
	s.K.Free(c, conn.Obj)
}

// Dispatch handles one request on the connection: connection state is
// c_lock-protected.
func (s *Store) Dispatch(c *kernel.Context, conn *Conn, cmd uint64) {
	defer s.call(c, "conn_dispatch")()
	c.Cover(3)
	conn.CLock.Lock(c)
	conn.Obj.Store(c, conn.Obj.Typ.MemberIndex("c_last_cmd"), cmd)
	conn.Obj.Add(c, conn.Obj.Typ.MemberIndex("c_reqs"), 1)
	_ = conn.Obj.Load(c, conn.Obj.Typ.MemberIndex("c_rbuf"))
	conn.Obj.Store(c, conn.Obj.Typ.MemberIndex("c_wbuf"), cmd<<8)
	c.Cover(22)
	conn.CLock.Unlock(c)
}

// Set inserts or updates a key (cache_set): the table structure under
// cache_table_lock, the entry content under its e_lock, the LRU under
// cache_lru_lock.
func (s *Store) Set(c *kernel.Context, key, value uint64) *Entry {
	defer s.call(c, "cache_set")()
	c.Cover(4)
	s.TableLock.Lock(c)
	e := s.table[key]
	if e == nil {
		c.Cover(14)
		if len(s.table) >= s.maxSize {
			s.evictLocked(c)
		}
		e = &Entry{Key: key}
		e.Obj = s.K.Alloc(c, s.EntryType, "")
		e.ELock = s.D.SpinIn(e.Obj, "e_lock")
		func() {
			defer s.call(c, "entry_alloc")()
			c.Cover(3)
			e.set(c, "e_key", key)
			e.set(c, "e_hits", 0)
			e.set(c, "e_cas", 0)
			e.set(c, "e_flags", 0)
			e.set(c, "e_expiry", 0)
		}()
		s.table[key] = e
		e.set(c, "e_hash_next", uint64(len(s.table)))
		s.lruAdd(c, e)
	}
	e.ELock.Lock(c)
	c.Cover(34)
	e.set(c, "e_value", value)
	e.set(c, "e_size", value%4096)
	e.set(c, "e_cas", e.get(c, "e_cas")+1)
	e.ELock.Unlock(c)
	s.TableLock.Unlock(c)
	s.statsBump(c, "st_sets")
	return e
}

// Get looks a key up (cache_get). The documented rule says e_hits is
// e_lock-protected — but this hot path bumps it with no lock held, the
// classic statistics race LockDoc flags as a violation.
func (s *Store) Get(c *kernel.Context, key uint64) (uint64, bool) {
	defer s.call(c, "cache_get")()
	c.Cover(4)
	// The table lock pins the entry against concurrent eviction for the
	// whole operation (the original uses item refcounts; the pin is
	// equivalent and keeps the e_lock rule observable).
	s.TableLock.Lock(c)
	e := s.table[key]
	if e == nil {
		s.TableLock.Unlock(c)
		s.statsBump(c, "st_gets")
		return 0, false
	}
	c.Cover(19)
	e.ELock.Lock(c)
	v := e.get(c, "e_value")
	_ = e.get(c, "e_flags")
	_ = e.get(c, "e_expiry")
	e.ELock.Unlock(c)
	// Deviation: lock-free statistics bump (no e_lock held).
	e.set(c, "e_hits", e.Obj.Peek(e.Obj.Typ.MemberIndex("e_hits"))+1)
	s.lruPromote(c, e)
	s.TableLock.Unlock(c)
	s.statsBump(c, "st_gets")
	s.statsBump(c, "st_hits")
	c.Cover(40)
	return v, true
}

// Delete removes a key (cache_delete).
func (s *Store) Delete(c *kernel.Context, key uint64) bool {
	defer s.call(c, "cache_delete")()
	c.Cover(3)
	s.TableLock.Lock(c)
	e := s.table[key]
	if e == nil {
		s.TableLock.Unlock(c)
		return false
	}
	c.Cover(14)
	delete(s.table, key)
	s.lruDel(c, e)
	s.TableLock.Unlock(c)
	s.freeEntry(c, e)
	return true
}

// evictLocked drops the LRU victim; the caller holds the table lock.
// Most evictions detach the victim under cache_lru_lock as documented —
// but an "obviously safe" fast path (the victim is about to be freed
// anyway) skips the lock, mirroring the "one call path misses the
// documented lock" bugs the paper hunts.
func (s *Store) evictLocked(c *kernel.Context) {
	defer s.call(c, "cache_evict")()
	c.Cover(3)
	if len(s.lru) == 0 {
		return
	}
	victim := s.lru[0]
	if s.K.Sched.Rand(8) == 0 {
		c.Cover(12)
		victim.set(c, "e_lru", 0) // the deviant lock-free write
	} else {
		s.LruLock.Lock(c)
		_ = victim.get(c, "e_lru")
		victim.set(c, "e_lru", 0)
		s.LruLock.Unlock(c)
	}
	s.lru = s.lru[1:]
	delete(s.table, victim.Key)
	c.Cover(25)
	s.freeEntry(c, victim)
	s.statsBump(c, "st_evictions")
}

func (s *Store) freeEntry(c *kernel.Context, e *Entry) {
	defer s.call(c, "entry_free")()
	c.Cover(2)
	s.K.Free(c, e.Obj)
}

func (s *Store) lruAdd(c *kernel.Context, e *Entry) {
	s.LruLock.Lock(c)
	e.set(c, "e_lru", uint64(len(s.lru)+1))
	s.lru = append(s.lru, e)
	s.LruLock.Unlock(c)
}

func (s *Store) lruDel(c *kernel.Context, e *Entry) {
	s.LruLock.Lock(c)
	_ = e.get(c, "e_lru")
	e.set(c, "e_lru", 0)
	for i, o := range s.lru {
		if o == e {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			break
		}
	}
	s.LruLock.Unlock(c)
}

// lruPromote moves an entry to the tail on a hit (lru_promote).
func (s *Store) lruPromote(c *kernel.Context, e *Entry) {
	defer s.call(c, "lru_promote")()
	s.LruLock.Lock(c)
	c.Cover(3)
	_ = e.get(c, "e_lru")
	for i, o := range s.lru {
		if o == e {
			s.lru = append(s.lru[:i], s.lru[i+1:]...)
			s.lru = append(s.lru, e)
			break
		}
	}
	e.set(c, "e_lru", uint64(len(s.lru)))
	s.LruLock.Unlock(c)
}

// statsBump updates a global counter under stats_lock.
func (s *Store) statsBump(c *kernel.Context, member string) {
	defer s.call(c, "stats_bump")()
	s.StatsLock.Lock(c)
	s.StatsObj.Add(c, s.StatsObj.Typ.MemberIndex(member), 1)
	s.StatsLock.Unlock(c)
}

// Len reports the number of cached entries.
func (s *Store) Len() int { return len(s.table) }

// Shutdown frees every entry and the stats object.
func (s *Store) Shutdown(c *kernel.Context) {
	s.TableLock.Lock(c)
	for len(s.lru) > 0 {
		e := s.lru[0]
		s.lru = s.lru[1:]
		delete(s.table, e.Key)
		s.freeEntry(c, e)
	}
	s.TableLock.Unlock(c)
	if s.StatsObj != nil {
		s.K.Free(c, s.StatsObj)
		s.StatsObj = nil
	}
}
