package blk_test

import (
	"bytes"
	"context"
	"testing"

	"lockdoc/internal/analysis"
	"lockdoc/internal/blk"
	"lockdoc/internal/core"
	"lockdoc/internal/db"
	"lockdoc/internal/fs"
	"lockdoc/internal/trace"
)

// runExample executes the block-layer example workload and imports the
// resulting trace with the standard configuration (which folds in the
// blk blacklists via fs.DefaultConfig).
func runExample(t *testing.T, seed int64, iterations int) (*db.DB, blk.ExampleResult) {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := blk.RunExample(w, seed, iterations)
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Import(r, fs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

// TestInjectedDeviationsWellFormed keeps the blk bug inventory
// self-consistent: unique IDs, complete descriptions, and members that
// actually exist on the registered types.
func TestInjectedDeviationsWellFormed(t *testing.T) {
	members := map[string]map[string]bool{}
	for _, typ := range []string{"request_queue", "request", "bio", "gendisk", "blk_plug", "elevator_queue", "hd_struct"} {
		members[typ] = map[string]bool{}
	}
	// Collect member names by registering into a scratch kernel-free
	// type table: reuse the RuleSpec corpus, which names every member.
	for _, spec := range blk.DocumentedRules() {
		if _, ok := members[spec.Type]; !ok {
			t.Fatalf("documented rule names unknown type %q", spec.Type)
		}
		members[spec.Type][spec.Member] = true
	}
	seen := map[string]bool{}
	for _, dev := range blk.InjectedDeviations() {
		if dev.ID == "" || dev.Type == "" || dev.Member == "" ||
			dev.Where == "" || dev.What == "" || dev.Expect == "" {
			t.Errorf("deviation %+v has empty fields", dev)
		}
		if seen[dev.ID] {
			t.Errorf("duplicate deviation ID %q", dev.ID)
		}
		seen[dev.ID] = true
		if dev.Expect != "violation" {
			t.Errorf("%s: unknown expectation %q", dev.ID, dev.Expect)
		}
		tm, ok := members[dev.Type]
		if !ok {
			t.Errorf("%s: unknown type %q", dev.ID, dev.Type)
			continue
		}
		if !tm[dev.Member] {
			t.Errorf("%s: member %s.%s has no documented rule", dev.ID, dev.Type, dev.Member)
		}
	}
	if len(seen) < 3 {
		t.Fatalf("only %d injected deviations, issue requires >= 3", len(seen))
	}
}

// TestBlkDeviationsRediscovered is the headline property of the
// simulated subsystem: every injected locking deviation must surface in
// analysis.FindViolations on a trace of the example workload.
func TestBlkDeviationsRediscovered(t *testing.T) {
	d, _ := runExample(t, 42, 60)
	results, err := core.DeriveAll(context.Background(), d, core.Options{AcceptThreshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	viols := analysis.FindViolations(d, results)

	hasViolation := func(dev blk.Deviation) bool {
		for _, v := range viols {
			g := v.Group
			if g.Type.Name == dev.Type && g.MemberName() == dev.Member && g.Key.Write == dev.Write {
				return true
			}
		}
		return false
	}

	for _, dev := range blk.InjectedDeviations() {
		if !hasViolation(dev) {
			t.Errorf("%s: expected a rule violation on %s.%s (%s %s), found none",
				dev.ID, dev.Type, dev.Member, dev.Where, accessType(dev.Write))
		}
	}
	if t.Failed() {
		for _, v := range viols {
			t.Logf("violation: %s.%s (%s) rule=%s held=%s count=%d",
				v.Group.TypeLabel(), v.Group.MemberName(), v.Group.AccessType(),
				d.SeqString(v.Rule), d.SeqString(v.Held), v.Count)
		}
	}
}

func accessType(write bool) string {
	if write {
		return "w"
	}
	return "r"
}

// TestBlkDocumentedRules checks the ground-truth documentation against
// an example trace: no documented rule may check as Incorrect, the bulk
// of the corpus must be observed, and members without an injected
// deviation must validate as fully Correct.
func TestBlkDocumentedRules(t *testing.T) {
	d, _ := runExample(t, 7, 60)
	specs := blk.DocumentedRules()
	results, err := analysis.CheckAll(d, specs)
	if err != nil {
		t.Fatal(err)
	}
	deviant := map[string]bool{}
	for _, dev := range blk.InjectedDeviations() {
		deviant[dev.Type+"."+dev.Member+"."+accessType(dev.Write)] = true
	}
	observed := 0
	for _, res := range results {
		key := res.Spec.Type + "." + res.Spec.Member + "." + accessType(res.Spec.Write)
		switch res.Verdict {
		case analysis.NotObserved:
			continue
		case analysis.Incorrect:
			t.Errorf("rule %s %v checks as incorrect (sr=%.2f)", key, res.Spec.Locks, res.Sr)
		case analysis.Ambivalent:
			if !deviant[key] {
				t.Errorf("rule %s %v ambivalent (sr=%.2f) but no deviation is injected there",
					key, res.Spec.Locks, res.Sr)
			}
		case analysis.Correct:
			if deviant[key] {
				t.Errorf("rule %s fully correct but a deviation is injected there — deviation invisible", key)
			}
		}
		observed++
	}
	if observed < len(specs)/2 {
		t.Errorf("only %d/%d documented rules observed by the example workload", observed, len(specs))
	}
}

// TestRunExampleDeterministicAndLeakFree: the example is a pure
// function of its seed and releases every allocation.
func TestRunExampleDeterministicAndLeakFree(t *testing.T) {
	run := func() ([]byte, blk.ExampleResult) {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		res, err := blk.RunExample(w, 99, 40)
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res
	}
	rawA, resA := run()
	rawB, resB := run()
	if !bytes.Equal(rawA, rawB) {
		t.Fatal("same seed produced different traces")
	}
	if resA != resB {
		t.Fatalf("same seed produced different results: %+v vs %+v", resA, resB)
	}
	if resA.Submitted == 0 || resA.Completed == 0 {
		t.Fatalf("example did no I/O: %+v", resA)
	}
	if resA.Completed+resA.Merged != resA.Submitted {
		t.Errorf("submitted %d bios but completed %d + merged %d", resA.Submitted, resA.Completed, resA.Merged)
	}
	if resA.Events == 0 {
		t.Fatal("no events recorded")
	}
}
