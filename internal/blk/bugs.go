package blk

// This file inventories the deliberate locking-rule deviations built
// into the simulated block layer, in the spirit of internal/fs/bugs.go.
// Each one is paced at roughly one deviant access per sixteen compliant
// ones, so the mined winner stays the locked rule (s_r just below 1)
// and the deviation surfaces in analysis.FindViolations.
// TestBlkDeviationsRediscovered and the fuzzer rediscovery test keep
// this inventory honest.

// Deviation describes one injected block-layer deviation. It mirrors
// fs.Deviation structurally; blk cannot import fs (fs.DefaultConfig
// folds in blk's black lists, so the dependency points the other way).
type Deviation struct {
	ID     string
	Type   string
	Member string
	Write  bool
	Where  string
	Paper  string
	What   string
	// Expect states how the deviation must surface; every blk deviation
	// is a plain rule violation.
	Expect string
}

// InjectedDeviations lists every deliberate block-layer deviation.
func InjectedDeviations() []Deviation {
	return []Deviation{
		{
			ID: "blk-lockless-peek", Type: "request_queue", Member: "queue_head", Write: false,
			Where:  "blk_peek_request",
			Paper:  "Sec. 7.4 (lockless fast-path checks preceding the locked slow path)",
			What:   "every 16th dispatch runs a lockless emptiness fast path reading queue_head before taking queue_lock",
			Expect: "violation",
		},
		{
			ID: "blk-lockless-last-merge", Type: "request_queue", Member: "last_merge", Write: false,
			Where:  "blk_peek_request",
			Paper:  "Sec. 7.4 (same fast path, second member)",
			What:   "the same lockless fast path also reads last_merge without queue_lock",
			Expect: "violation",
		},
		{
			ID: "blk-stats-racy", Type: "request_queue", Member: "in_flight", Write: true,
			Where:  "blk_account_io_done",
			Paper:  "Tab. 7/8 analog (the classically racy part_stat accounting)",
			What:   "one completion in sixteen decrements in_flight after queue_lock has been dropped",
			Expect: "violation",
		},
		{
			ID: "blk-mq-fastpath", Type: "bio", Member: "bi_status", Write: true,
			Where:  "bio_endio",
			Paper:  "Sec. 2.4 ('we don't actually know what locking is used at the lower level')",
			What:   "one completion in sixteen ends the bio blk-mq style, writing bi_status before queue_lock is taken",
			Expect: "violation",
		},
		{
			ID: "blk-mq-fastpath-flags", Type: "bio", Member: "bi_flags", Write: true,
			Where:  "bio_endio",
			Paper:  "Sec. 2.4 (same lockless completion fast path, second member)",
			What:   "the same lockless completion fast path also sets the bio's done flag before queue_lock is taken",
			Expect: "violation",
		},
		{
			ID: "blk-timeout-lockless", Type: "request", Member: "rq_deadline", Write: false,
			Where:  "blk_rq_timed_out_timer",
			Paper:  "Sec. 7.5 analog (timeout path peeking at request state)",
			What:   "every 16th timeout scan peeks the oldest in-flight request's rq_deadline before taking queue_lock",
			Expect: "violation",
		},
	}
}
