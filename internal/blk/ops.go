package blk

import (
	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
)

// Disk is one live disk: a request_queue plus its gendisk. The Go-side
// slices (queued, inflight) are scheduler bookkeeping; the observable
// state lives in the simulated members.
type Disk struct {
	L *Layer

	Q         *kernel.Object // request_queue
	QueueLock *locks.SpinLock
	Gd        *kernel.Object // gendisk
	Elv       *kernel.Object // elevator_queue
	Part      *kernel.Object // hd_struct (first partition)

	queued   []*Request
	inflight []*Request

	nextSector uint64
	lastEnd    uint64 // end sector of the most recently queued/merged bio
	submits    int
	peeks      int
	completes  int
	scans      int
	merges     int
}

// Request is a live request instance, owned by its queue while queued
// or in flight.
type Request struct {
	Obj *kernel.Object
	Bio *Bio
}

// Bio is a live bio instance.
type Bio struct {
	Obj   *kernel.Object
	ended bool // bi_status already written by the lockless fast path
}

// Plug is a task-local blk_plug: submitted bios park here until the
// task flushes them into the queue in one batch.
type Plug struct {
	Obj  *kernel.Object
	bios []*Bio
}

func (d *Disk) set(c *kernel.Context, m string, v uint64) {
	d.Q.Store(c, d.Q.Typ.MemberIndex(m), v)
}
func (d *Disk) get(c *kernel.Context, m string) uint64 {
	return d.Q.Load(c, d.Q.Typ.MemberIndex(m))
}
func (r *Request) set(c *kernel.Context, m string, v uint64) {
	r.Obj.Store(c, r.Obj.Typ.MemberIndex(m), v)
}
func (r *Request) get(c *kernel.Context, m string) uint64 {
	return r.Obj.Load(c, r.Obj.Typ.MemberIndex(m))
}
func (b *Bio) set(c *kernel.Context, m string, v uint64) {
	b.Obj.Store(c, b.Obj.Typ.MemberIndex(m), v)
}
func (b *Bio) get(c *kernel.Context, m string) uint64 {
	return b.Obj.Load(c, b.Obj.Typ.MemberIndex(m))
}
func (d *Disk) eset(c *kernel.Context, m string, v uint64) {
	d.Elv.Store(c, d.Elv.Typ.MemberIndex(m), v)
}
func (d *Disk) eget(c *kernel.Context, m string) uint64 {
	return d.Elv.Load(c, d.Elv.Typ.MemberIndex(m))
}
func (d *Disk) pset(c *kernel.Context, m string, v uint64) {
	d.Part.Store(c, d.Part.Typ.MemberIndex(m), v)
}
func (d *Disk) pget(c *kernel.Context, m string) uint64 {
	return d.Part.Load(c, d.Part.Typ.MemberIndex(m))
}

// AddDisk allocates a request_queue and a gendisk (black-listed
// initialization context, like alloc_inode).
func (l *Layer) AddDisk(c *kernel.Context, nrRequests uint64) *Disk {
	d := &Disk{L: l, nextSector: 8}
	func() {
		defer l.call(c, "blk_alloc_queue")()
		c.Cover(3)
		d.Q = l.K.Alloc(c, l.T.Queue, "")
		d.QueueLock = l.D.SpinIn(d.Q, "queue_lock")
		d.set(c, "queue_head", 0)
		d.set(c, "nr_sorted", 0)
		d.set(c, "in_flight", 0)
		d.set(c, "last_merge", 0)
		d.set(c, "queue_flags", QueueFlagSorted)
		d.set(c, "nr_requests", nrRequests)
		d.set(c, "boundary_sector", 0)
		d.set(c, "queue_depth", nrRequests/2)
		d.set(c, "nr_congestion_on", nrRequests*7/8)
		c.Cover(38)
	}()
	func() {
		defer l.call(c, "elevator_init")() // black-listed
		c.Cover(2)
		d.Elv = l.K.Alloc(c, l.T.Elevator, "")
		d.eset(c, "elv_count", 0)
		d.eset(c, "elv_hash", 0)
		d.eset(c, "elv_last_sector", 0)
		d.eset(c, "elv_registered", 1)
		d.eset(c, "elv_priv", 1)
		c.Cover(16)
	}()
	func() {
		defer l.call(c, "alloc_disk")()
		c.Cover(2)
		d.Gd = l.K.Alloc(c, l.T.Gendisk, "")
		d.Gd.Store(c, d.Gd.Typ.MemberIndex("major"), 8)
		d.Gd.Store(c, d.Gd.Typ.MemberIndex("first_minor"), uint64(len(l.disks)*16))
		d.Gd.Store(c, d.Gd.Typ.MemberIndex("minors"), 16)
		d.Gd.Store(c, d.Gd.Typ.MemberIndex("capacity"), 1<<21)
		d.Gd.Store(c, d.Gd.Typ.MemberIndex("gd_flags"), 0)
		c.Cover(22)
	}()
	func() {
		defer l.call(c, "add_partition")() // black-listed
		c.Cover(2)
		d.Part = l.K.Alloc(c, l.T.Part, "")
		d.pset(c, "start_sect", 8)
		d.pset(c, "nr_sects", (1<<21)-8)
		d.pset(c, "partno", 1)
		d.pset(c, "p_flags", 0)
		d.pset(c, "stamp", 0)
		d.pset(c, "p_in_flight", 0)
		c.Cover(20)
	}()
	func() {
		defer l.call(c, "add_disk")()
		c.Cover(4)
		d.set(c, "disk", d.Gd.ID)
	}()
	l.disks = append(l.disks, d)
	return d
}

// newBio allocates and initializes a bio (black-listed init context).
func (l *Layer) newBio(c *kernel.Context, sector, size uint64) *Bio {
	defer l.call(c, "bio_alloc")()
	c.Cover(3)
	b := &Bio{Obj: l.K.Alloc(c, l.T.Bio, "")}
	b.set(c, "bi_next", 0)
	b.set(c, "bi_sector", sector)
	b.set(c, "bi_size", size)
	b.set(c, "bi_flags", 0)
	b.set(c, "bi_status", 0)
	b.set(c, "bi_vcnt", 1+size/4096)
	c.Cover(20)
	return b
}

// freeBio releases a bio (black-listed teardown context).
func (l *Layer) freeBio(c *kernel.Context, b *Bio) {
	defer l.call(c, "bio_free")()
	c.Cover(2)
	l.K.Free(c, b.Obj)
}

// getRequest allocates a request for bio and initializes it
// (black-listed, like blk_rq_init in the real kernel).
func (l *Layer) getRequest(c *kernel.Context, d *Disk, b *Bio) *Request {
	defer l.call(c, "blk_rq_init")()
	c.Cover(2)
	rq := &Request{Obj: l.K.Alloc(c, l.T.Request, ""), Bio: b}
	rq.set(c, "rq_queue", d.Q.ID)
	rq.set(c, "rq_state", RQQueued)
	rq.set(c, "rq_sector", b.get(c, "bi_sector"))
	rq.set(c, "rq_nr_sectors", b.get(c, "bi_size")/512)
	rq.set(c, "rq_flags", 0)
	rq.set(c, "rq_deadline", 0)
	rq.set(c, "rq_errors", 0)
	rq.set(c, "rq_next", 0)
	rq.set(c, "rq_bio", b.Obj.ID)
	c.Cover(18)
	return rq
}

// putRequest releases a completed request and its bio.
func (l *Layer) putRequest(c *kernel.Context, rq *Request) {
	defer l.call(c, "blk_put_request")()
	c.Cover(3)
	func() {
		defer l.call(c, "__blk_put_request")() // black-listed
		c.Cover(4)
		if rq.Bio != nil {
			l.freeBio(c, rq.Bio)
			rq.Bio = nil
		}
		l.K.Free(c, rq.Obj)
		c.Cover(18)
	}()
}

// SubmitBio sends one bio down the request path: submit_bio ->
// generic_make_request -> blk_queue_bio, where the elevator either
// merges it into the last request or queues a fresh one — all under
// queue_lock.
func (l *Layer) SubmitBio(c *kernel.Context, d *Disk, size uint64) {
	defer l.call(c, "submit_bio")()
	c.Cover(2)
	d.submits++
	var sector uint64
	if d.submits%4 == 0 && len(d.queued) > 0 {
		// Every fourth submit continues where the queue tail ends, so
		// the elevator finds a back-merge.
		sector = d.lastEnd
	} else {
		sector = d.nextSector
		d.nextSector += 64 + size/512
	}
	bio := l.newBio(c, sector, size)
	d.lastEnd = sector + size/512
	func() {
		defer l.call(c, "generic_make_request")()
		c.Cover(5)
		l.queueBio(c, d, bio)
		c.Cover(30)
	}()
	c.Cover(20)
}

// queueBio is blk_queue_bio: the elevator entry point.
func (l *Layer) queueBio(c *kernel.Context, d *Disk, bio *Bio) {
	defer l.call(c, "blk_queue_bio")()
	c.Cover(3)
	d.QueueLock.Lock(c)
	c.Cover(10)
	_ = d.get(c, "nr_congestion_on") // congestion threshold check
	if rq := l.elvMerge(c, d, bio); rq != nil {
		c.Cover(25)
		d.merges++
		l.bioAttemptBackMerge(c, d, rq, bio)
	} else {
		c.Cover(40)
		rq := l.getRequest(c, d, bio)
		l.elvAddRequest(c, d, rq)
	}
	d.QueueLock.Unlock(c)
	c.Cover(55)
}

// elvMerge decides whether bio can be merged into the queue's last
// request. Caller holds queue_lock.
func (l *Layer) elvMerge(c *kernel.Context, d *Disk, bio *Bio) *Request {
	defer l.call(c, "elv_merge")()
	c.Cover(2)
	_ = d.get(c, "queue_head")
	_ = d.get(c, "boundary_sector")
	_ = d.eget(c, "elv_last_sector")
	last := d.get(c, "last_merge")
	if last == 0 || len(d.queued) == 0 {
		c.Cover(8)
		return nil
	}
	rq := d.queued[len(d.queued)-1]
	c.Cover(14)
	// Back-merge check: bio starts where the candidate request ends.
	end := rq.get(c, "rq_sector") + uint64(rq.get(c, "rq_nr_sectors"))
	if bio.get(c, "bi_sector") == end {
		c.Cover(30)
		return rq
	}
	return nil
}

// bioAttemptBackMerge grows rq by bio. Caller holds queue_lock.
func (l *Layer) bioAttemptBackMerge(c *kernel.Context, d *Disk, rq *Request, bio *Bio) {
	defer l.call(c, "bio_attempt_back_merge")()
	c.Cover(3)
	rq.set(c, "rq_nr_sectors", rq.get(c, "rq_nr_sectors")+bio.get(c, "bi_size")/512)
	bio.set(c, "bi_flags", bio.get(c, "bi_flags")|1) // BIO_MERGED
	bio.set(c, "bi_next", rq.get(c, "rq_bio"))
	rq.set(c, "rq_bio", bio.Obj.ID)
	d.set(c, "last_merge", rq.Obj.ID)
	d.eset(c, "elv_last_sector", rq.get(c, "rq_sector")+rq.get(c, "rq_nr_sectors"))
	c.Cover(20)
	// The merged bio completes with its request; remember it.
	if prev := rq.Bio; prev != nil && prev != bio {
		l.freeBio(c, prev)
	}
	rq.Bio = bio
}

// elvAddRequest inserts rq at the queue tail. Caller holds queue_lock.
func (l *Layer) elvAddRequest(c *kernel.Context, d *Disk, rq *Request) {
	defer l.call(c, "__elv_add_request")()
	c.Cover(2)
	if len(d.queued) > 0 {
		d.queued[len(d.queued)-1].set(c, "rq_next", rq.Obj.ID)
	}
	d.queued = append(d.queued, rq)
	d.set(c, "queue_head", d.queued[0].Obj.ID)
	d.set(c, "nr_sorted", d.get(c, "nr_sorted")+1)
	d.set(c, "last_merge", rq.Obj.ID)
	d.eset(c, "elv_count", d.eget(c, "elv_count")+1)
	d.eset(c, "elv_hash", rq.Obj.ID)
	c.Cover(30)
}

// PeekRequest dispatches the head request if any: blk_peek_request +
// blk_start_request under queue_lock.
//
// DEVIATION blk-lockless-peek (bugs.go): every 16th peek first runs the
// "lockless queue emptiness check" fast path, reading queue_head and
// last_merge without queue_lock.
func (l *Layer) PeekRequest(c *kernel.Context, d *Disk) *Request {
	defer l.call(c, "blk_peek_request")()
	c.Cover(2)
	d.peeks++
	if d.peeks%16 == 0 {
		c.Cover(7)
		_ = d.get(c, "queue_head") // no lock held
		_ = d.get(c, "last_merge") // no lock held
	}
	d.QueueLock.Lock(c)
	c.Cover(15)
	_ = d.get(c, "queue_head")
	_ = d.get(c, "last_merge")
	var rq *Request
	if len(d.queued) > 0 {
		rq = d.queued[0]
		l.startRequest(c, d, rq)
	}
	d.QueueLock.Unlock(c)
	c.Cover(40)
	return rq
}

// startRequest moves rq from the queue into flight. Caller holds
// queue_lock.
func (l *Layer) startRequest(c *kernel.Context, d *Disk, rq *Request) {
	defer l.call(c, "blk_start_request")()
	c.Cover(2)
	_ = d.get(c, "queue_depth") // in_flight < queue_depth dispatch gate
	rq.set(c, "rq_state", RQStarted)
	rq.set(c, "rq_deadline", l.K.Sched.Now()+3000)
	rq.set(c, "rq_flags", rq.get(c, "rq_flags")|1) // RQF_STARTED
	d.eset(c, "elv_count", d.eget(c, "elv_count")-1)
	l.partRoundStats(c, d, 1)
	d.queued = d.queued[1:]
	d.inflight = append(d.inflight, rq)
	if len(d.queued) > 0 {
		d.set(c, "queue_head", d.queued[0].Obj.ID)
	} else {
		d.set(c, "queue_head", 0)
		d.set(c, "last_merge", 0)
	}
	d.set(c, "nr_sorted", d.get(c, "nr_sorted")-1)
	d.set(c, "in_flight", d.get(c, "in_flight")+1)
	c.Cover(25)
}

// CompleteRequest finishes the oldest in-flight request:
// blk_update_request + bio_endio + accounting, under queue_lock.
// Returns false if nothing was in flight.
//
// DEVIATION blk-mq-fastpath (bugs.go): every 16th completion runs the
// blk-mq style lockless fast path, ending the bio (writing bi_status)
// before queue_lock is taken.
//
// DEVIATION blk-stats-racy (bugs.go): on a different 1-in-16 phase the
// in_flight accounting decrement runs after queue_lock is dropped, the
// classic racy part_stat update.
func (l *Layer) CompleteRequest(c *kernel.Context, d *Disk) bool {
	defer l.call(c, "__blk_complete_request")()
	c.Cover(2)
	if len(d.inflight) == 0 {
		c.Cover(5)
		return false
	}
	rq := d.inflight[0]
	d.inflight = d.inflight[1:]
	d.completes++

	if d.completes%16 == 7 && rq.Bio != nil {
		c.Cover(9)
		l.bioEndio(c, rq.Bio) // no lock held
	}

	d.QueueLock.Lock(c)
	c.Cover(14)
	_ = d.get(c, "queue_head") // dispatch restart check
	_ = rq.get(c, "rq_queue")
	_ = rq.get(c, "rq_flags")
	l.updateRequest(c, rq)
	if rq.Bio != nil && !rq.Bio.ended {
		l.bioEndio(c, rq.Bio)
	}
	l.elvCompletedRequest(c, d)
	l.partRoundStats(c, d, -1)
	statsRacy := d.completes%16 == 3
	if !statsRacy {
		l.accountIODone(c, d)
	}
	d.QueueLock.Unlock(c)
	if statsRacy {
		c.Cover(30)
		l.accountIODone(c, d) // no lock held
	}
	l.putRequest(c, rq)
	c.Cover(38)
	return true
}

// updateRequest records the completion result. Caller holds queue_lock.
func (l *Layer) updateRequest(c *kernel.Context, rq *Request) {
	defer l.call(c, "blk_update_request")()
	c.Cover(3)
	_ = rq.get(c, "rq_nr_sectors")
	rq.set(c, "rq_errors", 0)
	rq.set(c, "rq_state", RQComplete)
	c.Cover(40)
}

// bioEndio signals bio completion. Normally called under queue_lock;
// the deviant fast path calls it bare.
func (l *Layer) bioEndio(c *kernel.Context, b *Bio) {
	defer l.call(c, "bio_endio")()
	c.Cover(2)
	b.set(c, "bi_status", 1) // BLK_STS_OK marker
	b.set(c, "bi_flags", b.get(c, "bi_flags")|2)
	b.ended = true
	c.Cover(15)
}

// accountIODone updates the in-flight counter. Normally called under
// queue_lock; the deviant stats path calls it bare.
func (l *Layer) accountIODone(c *kernel.Context, d *Disk) {
	defer l.call(c, "blk_account_io_done")()
	c.Cover(2)
	d.set(c, "in_flight", d.get(c, "in_flight")-1)
	c.Cover(20)
}

// elvCompletedRequest lets the elevator observe a completion. Caller
// holds queue_lock.
func (l *Layer) elvCompletedRequest(c *kernel.Context, d *Disk) {
	defer l.call(c, "elv_completed_request")()
	c.Cover(2)
	_ = d.eget(c, "elv_count")
	_ = d.eget(c, "elv_registered")
	c.Cover(10)
}

// partRoundStats updates the per-partition I/O accounting. Caller
// holds queue_lock — unlike in_flight there is no racy fast path here.
func (l *Layer) partRoundStats(c *kernel.Context, d *Disk, delta int64) {
	defer l.call(c, "part_round_stats")()
	c.Cover(2)
	d.pset(c, "stamp", l.K.Sched.Now())
	d.pset(c, "p_in_flight", uint64(int64(d.pget(c, "p_in_flight"))+delta))
	c.Cover(14)
}

// TimeoutScan walks the in-flight list checking deadlines under
// queue_lock, like blk_rq_timed_out_timer.
//
// DEVIATION blk-timeout-lockless (bugs.go): every 16th scan peeks the
// oldest request's rq_deadline before taking the lock.
func (l *Layer) TimeoutScan(c *kernel.Context, d *Disk) {
	defer l.call(c, "blk_rq_timed_out_timer")()
	c.Cover(2)
	d.scans++
	if d.scans%16 == 11 && len(d.inflight) > 0 {
		c.Cover(6)
		_ = d.inflight[0].get(c, "rq_deadline") // no lock held
	}
	d.QueueLock.Lock(c)
	c.Cover(12)
	_ = d.get(c, "queue_head")
	now := l.K.Sched.Now()
	for _, rq := range d.inflight {
		_ = rq.get(c, "rq_errors")
		_ = rq.get(c, "rq_bio")
		if rq.Bio != nil {
			_ = rq.Bio.get(c, "bi_status")
			_ = rq.Bio.get(c, "bi_flags")
			_ = rq.Bio.get(c, "bi_vcnt")
		}
		if rq.get(c, "rq_deadline") < now {
			_ = rq.get(c, "rq_state")
		}
	}
	d.QueueLock.Unlock(c)
	c.Cover(30)
}

// StartPlug allocates a task-local plug. Plug members are deliberately
// accessed without any lock — their mined rule is "no locks".
func (l *Layer) StartPlug(c *kernel.Context) *Plug {
	defer l.call(c, "blk_start_plug")()
	c.Cover(2)
	p := &Plug{Obj: l.K.Alloc(c, l.T.Plug, "")}
	p.Obj.Store(c, p.Obj.Typ.MemberIndex("plug_list"), 0)
	p.Obj.Store(c, p.Obj.Typ.MemberIndex("plug_count"), 0)
	p.Obj.Store(c, p.Obj.Typ.MemberIndex("plug_should_sort"), 0)
	c.Cover(12)
	return p
}

// PlugBio parks a bio on the plug instead of hitting the queue.
func (l *Layer) PlugBio(c *kernel.Context, p *Plug, size uint64) {
	defer l.call(c, "blk_attempt_plug_merge")()
	c.Cover(3)
	bio := l.newBio(c, 1<<20+uint64(len(p.bios))*128, size)
	p.bios = append(p.bios, bio)
	mi := p.Obj.Typ.MemberIndex
	p.Obj.Store(c, mi("plug_list"), bio.Obj.ID)
	p.Obj.Store(c, mi("plug_count"), uint64(len(p.bios)))
	if len(p.bios) > 1 {
		p.Obj.Store(c, mi("plug_should_sort"), 1)
	}
	c.Cover(25)
}

// FinishPlug flushes the plugged bios into the queue in one batch and
// releases the plug.
func (l *Layer) FinishPlug(c *kernel.Context, d *Disk, p *Plug) {
	defer l.call(c, "blk_finish_plug")()
	c.Cover(2)
	func() {
		defer l.call(c, "blk_flush_plug_list")()
		c.Cover(3)
		mi := p.Obj.Typ.MemberIndex
		_ = p.Obj.Load(c, mi("plug_count"))
		_ = p.Obj.Load(c, mi("plug_should_sort"))
		d.QueueLock.Lock(c)
		for _, bio := range p.bios {
			rq := l.getRequest(c, d, bio)
			l.elvAddRequest(c, d, rq)
		}
		d.QueueLock.Unlock(c)
		p.bios = nil
		p.Obj.Store(c, mi("plug_list"), 0)
		p.Obj.Store(c, mi("plug_count"), 0)
		c.Cover(40)
	}()
	l.K.Free(c, p.Obj)
	c.Cover(8)
}

// PlugStats inspects a task-local plug, like blk_check_plugged. The
// plug is strictly task-local, so no lock is taken.
func (l *Layer) PlugStats(c *kernel.Context, p *Plug) {
	defer l.call(c, "blk_check_plugged")()
	c.Cover(2)
	mi := p.Obj.Typ.MemberIndex
	_ = p.Obj.Load(c, mi("plug_list"))
	_ = p.Obj.Load(c, mi("plug_count"))
	_ = p.Obj.Load(c, mi("plug_should_sort"))
	c.Cover(10)
}

// SubmitSplit submits an oversized bio that bio_split cuts in two
// before queueing. The split itself works on caller-owned staging
// state and so runs lock-free, like the real bio_split; both halves
// then go down the normal blk_queue_bio path, where the child usually
// back-merges into the parent's request.
func (l *Layer) SubmitSplit(c *kernel.Context, d *Disk, size uint64) {
	defer l.call(c, "submit_bio")()
	c.Cover(2)
	d.submits++
	sector := d.nextSector
	d.nextSector += 64 + size/512
	parent := l.newBio(c, sector, size)
	half := size / 2
	var child *Bio
	func() {
		defer l.call(c, "bio_split")()
		c.Cover(4)
		child = l.newBio(c, sector+half/512, half)
		parent.set(c, "bi_size", half)
		parent.set(c, "bi_vcnt", 1+half/4096)
		child.set(c, "bi_sector", sector+half/512)
		child.set(c, "bi_size", half)
		child.set(c, "bi_vcnt", 1+half/4096)
		c.Cover(28)
	}()
	d.lastEnd = sector + size/512
	func() {
		defer l.call(c, "generic_make_request")()
		c.Cover(5)
		l.queueBio(c, d, parent)
		l.queueBio(c, d, child)
		c.Cover(30)
	}()
	c.Cover(20)
}

// SysfsShow models a full sysfs attribute read (queue_attr_show):
// queue_sysfs_lock serializes the handler, which nests queue_lock for
// the queue/elevator/request state and major_names_lock for the
// gendisk and partition table.
func (l *Layer) SysfsShow(c *kernel.Context, d *Disk) {
	defer l.call(c, "queue_attr_show")()
	c.Cover(3)
	l.Sysfs.Lock(c)
	d.QueueLock.Lock(c)
	for _, m := range []string{
		"queue_head", "last_merge", "in_flight", "nr_sorted",
		"queue_flags", "nr_requests", "boundary_sector", "disk",
		"queue_depth", "nr_congestion_on",
	} {
		_ = d.get(c, m)
	}
	for _, m := range []string{
		"elv_count", "elv_hash", "elv_last_sector", "elv_registered", "elv_priv",
	} {
		_ = d.eget(c, m)
	}
	if len(d.queued) > 0 {
		rq := d.queued[0]
		for _, m := range []string{"rq_state", "rq_sector", "rq_nr_sectors", "rq_deadline", "rq_flags", "rq_errors", "rq_next", "rq_queue", "rq_bio"} {
			_ = rq.get(c, m)
		}
		if rq.Bio != nil {
			for _, m := range []string{"bi_sector", "bi_size", "bi_vcnt", "bi_status", "bi_flags", "bi_next"} {
				_ = rq.Bio.get(c, m)
			}
		}
	}
	d.QueueLock.Unlock(c)
	c.Cover(30)
	l.MajorNames.Lock(c)
	for _, m := range []string{"major", "first_minor", "minors", "capacity", "gd_flags"} {
		_ = d.Gd.Load(c, d.Gd.Typ.MemberIndex(m))
	}
	for _, m := range []string{"start_sect", "nr_sects", "partno", "p_flags"} {
		_ = d.pget(c, m)
	}
	// Per-partition accounting snapshot: queue_lock nests inside
	// major_names_lock here, the same order disk_stats_show uses.
	d.QueueLock.Lock(c)
	_ = d.pget(c, "stamp")
	_ = d.pget(c, "p_in_flight")
	for _, m := range []string{"in_flight", "queue_head", "last_merge", "nr_sorted", "queue_depth"} {
		_ = d.get(c, m)
	}
	d.QueueLock.Unlock(c)
	l.MajorNames.Unlock(c)
	l.Sysfs.Unlock(c)
	c.Cover(55)
}

// SysfsStore models a sysfs attribute write (queue_attr_store): the
// tunables are updated under queue_sysfs_lock + queue_lock.
func (l *Layer) SysfsStore(c *kernel.Context, d *Disk, nrRequests, boundary uint64) {
	defer l.call(c, "queue_attr_store")()
	c.Cover(3)
	l.Sysfs.Lock(c)
	d.QueueLock.Lock(c)
	d.set(c, "nr_requests", nrRequests)
	d.set(c, "boundary_sector", boundary)
	d.set(c, "queue_depth", nrRequests/2)
	d.set(c, "nr_congestion_on", nrRequests*7/8)
	d.set(c, "queue_flags", d.get(c, "queue_flags")|QueueFlagSorted)
	d.QueueLock.Unlock(c)
	l.Sysfs.Unlock(c)
	c.Cover(25)
}

// ElvSwitch swaps the I/O scheduler (elv_iosched_switch): the elevator
// is unregistered, its state reset, and re-registered — all under
// queue_sysfs_lock + queue_lock.
func (l *Layer) ElvSwitch(c *kernel.Context, d *Disk) {
	defer l.call(c, "elv_iosched_switch")()
	c.Cover(3)
	l.Sysfs.Lock(c)
	d.QueueLock.Lock(c)
	d.eset(c, "elv_registered", 0)
	d.eset(c, "elv_count", uint64(len(d.queued)))
	d.eset(c, "elv_hash", 0)
	d.eset(c, "elv_last_sector", 0)
	d.eset(c, "elv_priv", d.eget(c, "elv_priv")+1)
	d.eset(c, "elv_registered", 1)
	d.QueueLock.Unlock(c)
	l.Sysfs.Unlock(c)
	c.Cover(40)
}

// SetQueueFlag sets a queue flag under queue_lock.
func (l *Layer) SetQueueFlag(c *kernel.Context, d *Disk, flag uint64) {
	defer l.call(c, "blk_queue_flag_set")()
	c.Cover(2)
	d.QueueLock.Lock(c)
	d.set(c, "queue_flags", d.get(c, "queue_flags")|flag)
	d.QueueLock.Unlock(c)
	c.Cover(8)
}

// ReadStats models the sysfs attribute reads: queue counters under
// queue_lock, gendisk registration state under major_names_lock.
func (l *Layer) ReadStats(c *kernel.Context, d *Disk) {
	func() {
		defer l.call(c, "queue_stats_show")()
		c.Cover(2)
		d.QueueLock.Lock(c)
		_ = d.get(c, "queue_head")
		_ = d.get(c, "last_merge")
		_ = d.get(c, "in_flight")
		_ = d.get(c, "nr_sorted")
		_ = d.get(c, "queue_flags")
		_ = d.get(c, "nr_requests")
		_ = d.get(c, "disk")
		_ = d.pget(c, "stamp")
		_ = d.pget(c, "p_in_flight")
		d.QueueLock.Unlock(c)
		c.Cover(20)
	}()
	func() {
		defer l.call(c, "disk_stats_show")()
		c.Cover(2)
		l.MajorNames.Lock(c)
		_ = d.Gd.Load(c, d.Gd.Typ.MemberIndex("major"))
		_ = d.Gd.Load(c, d.Gd.Typ.MemberIndex("first_minor"))
		_ = d.Gd.Load(c, d.Gd.Typ.MemberIndex("minors"))
		_ = d.Gd.Load(c, d.Gd.Typ.MemberIndex("capacity"))
		_ = d.Gd.Load(c, d.Gd.Typ.MemberIndex("gd_flags"))
		_ = d.pget(c, "start_sect")
		_ = d.pget(c, "nr_sects")
		_ = d.pget(c, "partno")
		_ = d.pget(c, "p_flags")
		d.QueueLock.Lock(c)
		for _, m := range []string{"in_flight", "queue_flags", "nr_requests", "queue_head", "last_merge", "nr_sorted", "boundary_sector", "disk"} {
			_ = d.get(c, m)
		}
		_ = d.pget(c, "stamp")
		_ = d.pget(c, "p_in_flight")
		d.QueueLock.Unlock(c)
		l.MajorNames.Unlock(c)
		c.Cover(15)
	}()
}

// SetCapacity updates the disk size and resizes the partition table
// under major_names_lock.
func (l *Layer) SetCapacity(c *kernel.Context, d *Disk, sectors uint64) {
	defer l.call(c, "set_capacity")()
	c.Cover(2)
	l.MajorNames.Lock(c)
	d.Gd.Store(c, d.Gd.Typ.MemberIndex("capacity"), sectors)
	d.pset(c, "nr_sects", sectors-8)
	d.pset(c, "p_flags", d.pget(c, "p_flags")|1) // partition resized
	l.MajorNames.Unlock(c)
	c.Cover(8)
}

// Drain completes everything still queued or in flight so teardown
// frees no live requests behind the analysis' back.
func (l *Layer) Drain(c *kernel.Context, d *Disk) {
	for len(d.queued) > 0 {
		l.PeekRequest(c, d)
	}
	for len(d.inflight) > 0 {
		l.CompleteRequest(c, d)
	}
}

// Teardown unregisters every disk (black-listed teardown context).
func (l *Layer) Teardown(c *kernel.Context) {
	for _, d := range l.disks {
		l.Drain(c, d)
		func() {
			defer l.call(c, "delete_partition")() // black-listed
			c.Cover(2)
			l.K.Free(c, d.Part)
		}()
		func() {
			defer l.call(c, "elevator_exit")() // black-listed
			c.Cover(2)
			l.K.Free(c, d.Elv)
		}()
		func() {
			defer l.call(c, "del_gendisk")()
			c.Cover(2)
			l.K.Free(c, d.Gd)
		}()
		func() {
			defer l.call(c, "blk_cleanup_queue")()
			c.Cover(3)
			d.set(c, "queue_flags", d.get(c, "queue_flags")|QueueFlagStopped)
			l.K.Free(c, d.Q)
			c.Cover(30)
		}()
	}
	l.disks = nil
}
