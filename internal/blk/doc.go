package blk

import "lockdoc/internal/analysis"

// This file is the block layer's locking documentation, as a developer
// would reconstruct it from block/blk-core.c's leading comment and
// include/linux/blkdev.h. It is kept separate from fs.DocumentedRules
// (whose count tests pin) and checked by TestBlkDocumentedRules.

// rules builds one or two RuleSpecs; rw is "r", "w" or "rw".
func rules(out *[]analysis.RuleSpec, typ, member, rw, source string, lockSpecs ...string) {
	for _, mode := range rw {
		*out = append(*out, analysis.RuleSpec{
			Type: typ, Member: member, Write: mode == 'w',
			Locks: lockSpecs, Source: source,
		})
	}
}

// DocumentedRules returns the documented-rule corpus for the block
// layer: request_queue dispatch state and queued request/bio fields
// under queue_lock, sysfs tunables under queue_sysfs_lock + queue_lock,
// gendisk registration and partition-table state under
// major_names_lock, partition I/O accounting under queue_lock, the
// lock-free task-local plug, and lock-free bio staging (bio_split).
func DocumentedRules() []analysis.RuleSpec {
	var out []analysis.RuleSpec

	// --- struct request_queue (include/linux/blkdev.h).
	const qDoc = "include/linux/blkdev.h:420"
	rules(&out, "request_queue", "queue_head", "rw", qDoc, "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "nr_sorted", "rw", qDoc, "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "in_flight", "rw", qDoc, "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "last_merge", "rw", qDoc, "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "queue_flags", "rw", qDoc, "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "boundary_sector", "r", qDoc, "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "disk", "r", qDoc, "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "nr_requests", "r", qDoc, "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "queue_depth", "r", qDoc, "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "nr_congestion_on", "r", qDoc, "ES(request_queue.queue_lock)")
	// Tunables are only written by sysfs attribute stores, which hold
	// queue_sysfs_lock around the queue_lock critical section.
	const sysfsDoc = "block/blk-sysfs.c:20"
	rules(&out, "request_queue", "nr_requests", "w", sysfsDoc,
		"queue_sysfs_lock", "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "boundary_sector", "w", sysfsDoc,
		"queue_sysfs_lock", "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "queue_depth", "w", sysfsDoc,
		"queue_sysfs_lock", "ES(request_queue.queue_lock)")
	rules(&out, "request_queue", "nr_congestion_on", "w", sysfsDoc,
		"queue_sysfs_lock", "ES(request_queue.queue_lock)")

	// --- struct request (queued requests belong to their queue).
	const rqDoc = "include/linux/blkdev.h:130"
	rules(&out, "request", "rq_state", "rw", rqDoc, "EO(request_queue.queue_lock)")
	rules(&out, "request", "rq_sector", "r", rqDoc, "EO(request_queue.queue_lock)")
	rules(&out, "request", "rq_nr_sectors", "rw", rqDoc, "EO(request_queue.queue_lock)")
	rules(&out, "request", "rq_deadline", "rw", rqDoc, "EO(request_queue.queue_lock)")
	rules(&out, "request", "rq_flags", "rw", rqDoc, "EO(request_queue.queue_lock)")
	rules(&out, "request", "rq_queue", "r", rqDoc, "EO(request_queue.queue_lock)")
	rules(&out, "request", "rq_next", "w", rqDoc, "EO(request_queue.queue_lock)")
	rules(&out, "request", "rq_bio", "w", rqDoc, "EO(request_queue.queue_lock)")
	rules(&out, "request", "rq_errors", "w", rqDoc, "EO(request_queue.queue_lock)")

	// --- struct bio (attached to a queued request). While a bio is
	// still caller-owned staging state (bio_split), its geometry fields
	// are written without locks, like the plug.
	const bioDoc = "include/linux/blk_types.h:90"
	rules(&out, "bio", "bi_status", "w", bioDoc, "EO(request_queue.queue_lock)")
	rules(&out, "bio", "bi_flags", "w", bioDoc, "EO(request_queue.queue_lock)")
	rules(&out, "bio", "bi_next", "w", bioDoc, "EO(request_queue.queue_lock)")
	rules(&out, "bio", "bi_sector", "r", bioDoc, "EO(request_queue.queue_lock)")
	rules(&out, "bio", "bi_size", "r", bioDoc, "EO(request_queue.queue_lock)")
	rules(&out, "bio", "bi_sector", "w", bioDoc)
	rules(&out, "bio", "bi_size", "w", bioDoc)
	rules(&out, "bio", "bi_vcnt", "w", bioDoc)

	// --- struct elevator_queue (block/elevator.c). Dispatch state is
	// queue_lock territory; registration state is flipped only by the
	// sysfs elevator switch, which also holds queue_sysfs_lock.
	const elvDoc = "block/elevator.c:40"
	rules(&out, "elevator_queue", "elv_count", "rw", elvDoc, "EO(request_queue.queue_lock)")
	rules(&out, "elevator_queue", "elv_hash", "w", elvDoc, "EO(request_queue.queue_lock)")
	rules(&out, "elevator_queue", "elv_last_sector", "rw", elvDoc, "EO(request_queue.queue_lock)")
	rules(&out, "elevator_queue", "elv_registered", "w", elvDoc,
		"queue_sysfs_lock", "EO(request_queue.queue_lock)")
	rules(&out, "elevator_queue", "elv_registered", "r", elvDoc, "EO(request_queue.queue_lock)")
	rules(&out, "elevator_queue", "elv_priv", "w", elvDoc,
		"queue_sysfs_lock", "EO(request_queue.queue_lock)")
	rules(&out, "elevator_queue", "elv_priv", "r", elvDoc, "EO(request_queue.queue_lock)")

	// --- struct gendisk (block/genhd.c registration state).
	const gdDoc = "block/genhd.c:30"
	rules(&out, "gendisk", "capacity", "rw", gdDoc, "major_names_lock")
	rules(&out, "gendisk", "gd_flags", "r", gdDoc, "major_names_lock")
	rules(&out, "gendisk", "major", "r", gdDoc, "major_names_lock")
	rules(&out, "gendisk", "first_minor", "r", gdDoc, "major_names_lock")
	rules(&out, "gendisk", "minors", "r", gdDoc, "major_names_lock")

	// --- struct hd_struct (block/partition-generic.c): the partition
	// table under major_names_lock, per-partition I/O accounting under
	// the owning queue's lock.
	const partDoc = "block/partition-generic.c:25"
	rules(&out, "hd_struct", "start_sect", "r", partDoc, "major_names_lock")
	rules(&out, "hd_struct", "nr_sects", "rw", partDoc, "major_names_lock")
	rules(&out, "hd_struct", "partno", "r", partDoc, "major_names_lock")
	rules(&out, "hd_struct", "p_flags", "rw", partDoc, "major_names_lock")
	rules(&out, "hd_struct", "stamp", "rw", partDoc, "EO(request_queue.queue_lock)")
	rules(&out, "hd_struct", "p_in_flight", "rw", partDoc, "EO(request_queue.queue_lock)")

	// --- struct blk_plug: strictly task-local, no locks at all.
	const plugDoc = "include/linux/blkdev.h:1050"
	rules(&out, "blk_plug", "plug_list", "rw", plugDoc)
	rules(&out, "blk_plug", "plug_count", "rw", plugDoc)
	rules(&out, "blk_plug", "plug_should_sort", "rw", plugDoc)

	return out
}
