// Package blk implements the simulated block layer (block/ in Linux):
// the single-queue request path of the pre-blk-mq kernel — request
// queue, elevator merging, plugging and bio completion — in the spirit
// of internal/fs and internal/jbd2. It exists to give the workload
// fuzzer genuinely new (member × lock-combination) territory that the
// fixed benchmark mix never touches.
//
// Ground-truth locking (mirroring block/blk-core.c and blkdev.h of the
// single-queue era):
//
//   - queue_lock (spinlock_t in request_queue) protects the queue's
//     dispatch state: queue_head, nr_sorted, in_flight, last_merge,
//     queue_flags — and, while a request sits on the queue, the
//     request's own fields (rq_state, rq_sector, rq_nr_sectors,
//     rq_deadline, rq_next, ...), the fields of its attached bio
//     (bi_status, bi_flags, bi_next), the elevator's dispatch state
//     (elevator_queue) and the partition I/O accounting fields of
//     hd_struct (stamp, p_in_flight),
//   - major_names_lock (global mutex of block/genhd.c) protects the
//     gendisk registration fields (capacity, gd_flags, ...) and the
//     partition table fields of hd_struct (start_sect, nr_sects, ...),
//   - queue_sysfs_lock (global mutex of block/blk-sysfs.c) serializes
//     sysfs attribute access and elevator switching; attribute
//     handlers nest queue_lock (and major_names_lock) inside it,
//   - blk_plug is strictly task-local: its members need no locks at
//     all, exactly like the real per-task plug list,
//   - a bio being assembled or split (bio_split) is caller-owned
//     staging state: its fields need no locks until the bio is queued.
//
// Like fs and jbd2 the code deviates deliberately; see bugs.go for the
// inventory the analysis pipeline has to rediscover.
package blk

import (
	"fmt"

	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
)

const (
	u32 = 4
	u64 = 8
)

// Request states (rq_state values).
const (
	RQQueued uint64 = iota
	RQStarted
	RQComplete
)

// Queue flags.
const (
	QueueFlagStopped = 1 << 0
	QueueFlagPlugged = 1 << 1
	QueueFlagSorted  = 1 << 2
)

// registerQueueType defines request_queue with 12 members, 2 filtered
// (the queue lock and the black-listed dispatch wait queue).
func registerQueueType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("request_queue").
		Field("queue_head", u64).
		Field("nr_sorted", u32).
		Field("in_flight", u32).
		Field("last_merge", u64).
		Field("queue_flags", u64).
		Field("nr_requests", u32).
		Field("boundary_sector", u64).
		Field("queue_depth", u32).
		Field("nr_congestion_on", u32).
		Lock("queue_lock", u32).  // filtered
		Field("queue_waitq", u64). // black-listed (wait queue)
		Field("disk", u64))
}

// registerRequestType defines request with 9 members, none filtered.
// Its protecting lock is the owning queue's queue_lock, so its rules
// surface as EO locks — like journal_head under the buffer bit lock.
func registerRequestType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("request").
		Field("rq_queue", u64).
		Field("rq_state", u32).
		Field("rq_sector", u64).
		Field("rq_nr_sectors", u32).
		Field("rq_flags", u64).
		Field("rq_deadline", u64).
		Field("rq_errors", u32).
		Field("rq_next", u64).
		Field("rq_bio", u64))
}

// registerBioType defines bio with 6 members, none filtered. While a
// bio is attached to a queued request, its fields are protected by the
// owning queue's queue_lock (EO).
func registerBioType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("bio").
		Field("bi_next", u64).
		Field("bi_sector", u64).
		Field("bi_size", u32).
		Field("bi_flags", u32).
		Field("bi_status", u32).
		Field("bi_vcnt", u32))
}

// registerGendiskType defines gendisk with 5 members; registration
// fields are protected by the global major_names_lock.
func registerGendiskType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("gendisk").
		Field("major", u32).
		Field("first_minor", u32).
		Field("minors", u32).
		Field("capacity", u64).
		Field("gd_flags", u32))
}

// registerPlugType defines blk_plug with 3 members — the task-local
// plug list whose rule is "no locks".
func registerPlugType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("blk_plug").
		Field("plug_list", u64).
		Field("plug_count", u32).
		Field("plug_should_sort", u32))
}

// registerElevatorType defines elevator_queue with 5 members. The
// dispatch fields are protected by the owning queue's queue_lock (EO);
// registration state additionally sits under queue_sysfs_lock.
func registerElevatorType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("elevator_queue").
		Field("elv_count", u32).
		Field("elv_hash", u64).
		Field("elv_last_sector", u64).
		Field("elv_registered", u32).
		Field("elv_priv", u64))
}

// registerPartType defines hd_struct with 6 members. The partition
// table fields are protected by major_names_lock; the per-partition
// I/O accounting fields by the owning queue's queue_lock.
func registerPartType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("hd_struct").
		Field("start_sect", u64).
		Field("nr_sects", u64).
		Field("partno", u32).
		Field("p_flags", u32).
		Field("stamp", u64).
		Field("p_in_flight", u32))
}

// Types bundles the block-layer data types.
type Types struct {
	Queue    *kernel.TypeInfo
	Request  *kernel.TypeInfo
	Bio      *kernel.TypeInfo
	Gendisk  *kernel.TypeInfo
	Plug     *kernel.TypeInfo
	Elevator *kernel.TypeInfo
	Part     *kernel.TypeInfo
}

// RegisterTypes registers request_queue, request, bio, gendisk,
// blk_plug, elevator_queue and hd_struct.
func RegisterTypes(k *kernel.Kernel) *Types {
	return &Types{
		Queue:    registerQueueType(k),
		Request:  registerRequestType(k),
		Bio:      registerBioType(k),
		Gendisk:  registerGendiskType(k),
		Plug:     registerPlugType(k),
		Elevator: registerElevatorType(k),
		Part:     registerPartType(k),
	}
}

// MemberBlacklist returns the blk part of the member black list: the
// dispatch wait queue of request_queue is out of scope (Sec. 5.3).
func MemberBlacklist() map[string][]string {
	return map[string][]string{
		"request_queue": {"queue_waitq"},
	}
}

// FuncBlacklist returns the blk function names whose dynamic extent is
// filtered during import: initialization and teardown.
func FuncBlacklist() []string {
	return []string{
		"blk_alloc_queue", "blk_cleanup_queue", "blk_rq_init",
		"__blk_put_request", "bio_alloc", "bio_free",
		"alloc_disk", "add_disk", "del_gendisk",
		"elevator_init", "elevator_exit",
		"add_partition", "delete_partition",
	}
}

// funcDef is one entry of the simulated block/ source corpus.
type funcDef struct {
	file  string
	line  uint32
	name  string
	lines uint32
}

// registerFuncs registers every simulated block-layer function, hot and
// cold. Cold functions (integrity, freezing, splitting) are registered
// but never called, keeping the coverage report realistic.
func registerFuncs(k *kernel.Kernel) map[string]*kernel.FuncInfo {
	defs := []funcDef{
		// block/blk-core.c — the request path.
		{"block/blk-core.c", 90, "blk_alloc_queue", 40},
		{"block/blk-core.c", 160, "blk_cleanup_queue", 35},
		{"block/blk-core.c", 230, "blk_rq_init", 20},
		{"block/blk-core.c", 280, "blk_queue_flag_set", 10},
		{"block/blk-core.c", 340, "submit_bio", 25},
		{"block/blk-core.c", 400, "generic_make_request", 35},
		{"block/blk-core.c", 470, "blk_queue_bio", 60},
		{"block/blk-core.c", 560, "blk_peek_request", 45},
		{"block/blk-core.c", 630, "blk_start_request", 30},
		{"block/blk-core.c", 690, "blk_update_request", 50},
		{"block/blk-core.c", 770, "__blk_complete_request", 40},
		{"block/blk-core.c", 830, "blk_account_io_done", 25},
		{"block/blk-core.c", 880, "blk_put_request", 15},
		{"block/blk-core.c", 910, "__blk_put_request", 20},
		{"block/blk-core.c", 950, "blk_start_plug", 15},
		{"block/blk-core.c", 980, "blk_flush_plug_list", 45},
		{"block/blk-core.c", 1050, "blk_finish_plug", 10},
		// block/blk-core.c — accounting and plug inspection.
		{"block/blk-core.c", 1080, "part_round_stats", 20},
		{"block/blk-core.c", 1120, "blk_check_plugged", 15},
		// block/elevator.c — the I/O scheduler.
		{"block/elevator.c", 60, "elevator_init", 30},
		{"block/elevator.c", 120, "elv_merge", 40},
		{"block/elevator.c", 190, "__elv_add_request", 35},
		{"block/elevator.c", 250, "elv_completed_request", 20}, // cold
		{"block/elevator.c", 300, "elv_iosched_switch", 50},
		{"block/elevator.c", 370, "elevator_exit", 15},
		// block/blk-merge.c — merging and splitting.
		{"block/blk-merge.c", 80, "blk_attempt_plug_merge", 30},
		{"block/blk-merge.c", 140, "bio_attempt_back_merge", 25},
		{"block/blk-merge.c", 200, "bio_split", 45},
		// block/blk-timeout.c — request timeouts.
		{"block/blk-timeout.c", 40, "blk_rq_timed_out_timer", 35},
		{"block/blk-timeout.c", 100, "blk_add_timer", 15}, // cold
		// block/bio.c — bio lifecycle.
		{"block/bio.c", 60, "bio_alloc", 25},
		{"block/bio.c", 110, "bio_free", 15},
		{"block/bio.c", 150, "bio_endio", 20},
		// block/blk-sysfs.c — sysfs attributes and elevator switching.
		{"block/blk-sysfs.c", 70, "queue_stats_show", 25},
		{"block/blk-sysfs.c", 120, "queue_attr_show", 45},
		{"block/blk-sysfs.c", 190, "queue_attr_store", 30},
		// block/genhd.c — gendisk registration and partitions.
		{"block/genhd.c", 100, "alloc_disk", 25},
		{"block/genhd.c", 160, "add_disk", 30},
		{"block/genhd.c", 220, "del_gendisk", 25},
		{"block/genhd.c", 270, "set_capacity", 10},
		{"block/genhd.c", 300, "disk_stats_show", 20},
		{"block/genhd.c", 340, "add_partition", 25},
		{"block/genhd.c", 390, "delete_partition", 15},
		// Cold paths never exercised by any workload.
		{"block/blk-integrity.c", 50, "blk_integrity_register", 40},
		{"block/blk-mq-sched.c", 80, "blk_freeze_queue", 30},
	}
	funcs := make(map[string]*kernel.FuncInfo, len(defs))
	for _, d := range defs {
		funcs[d.name] = k.Func(d.file, d.line, d.name, d.lines)
	}
	return funcs
}

// Layer is the simulated block layer: global locks, the registered
// function corpus and the live disks.
type Layer struct {
	K *kernel.Kernel
	D *locks.Domain
	T *Types

	// MajorNames is block/genhd.c's global major_names_lock.
	MajorNames *locks.Mutex
	// Sysfs is block/blk-sysfs.c's global queue_sysfs_lock. Attribute
	// handlers nest queue_lock (and major_names_lock) inside it; the
	// reverse nesting never occurs.
	Sysfs *locks.Mutex

	funcs map[string]*kernel.FuncInfo
	disks []*Disk
}

// New wires up the block layer: types, the global locks and the
// function corpus. Disks are added separately with AddDisk.
func New(k *kernel.Kernel, d *locks.Domain) *Layer {
	l := &Layer{K: k, D: d, T: RegisterTypes(k)}
	l.MajorNames = d.Mutex("major_names_lock")
	l.Sysfs = d.Mutex("queue_sysfs_lock")
	l.funcs = registerFuncs(k)
	return l
}

// fn returns a registered function; unknown names are programming
// errors in the simulated kernel.
func (l *Layer) fn(name string) *kernel.FuncInfo {
	fi, ok := l.funcs[name]
	if !ok {
		panic(fmt.Sprintf("blk: unregistered function %q", name))
	}
	return fi
}

// call enters fn and returns the matching exit thunk:
//
//	defer l.call(c, "blk_queue_bio")()
func (l *Layer) call(c *kernel.Context, name string) func() {
	fi := l.fn(name)
	c.Enter(fi)
	return func() { c.Exit(fi) }
}

// Disks returns the registered disks.
func (l *Layer) Disks() []*Disk { return l.disks }
