package blk

import (
	"fmt"

	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
	"lockdoc/internal/sched"
	"lockdoc/internal/trace"
)

// ExampleResult reports what the standalone block-layer example did.
// Every submitted bio is either merged into an earlier request by the
// elevator or completed as its own request: Submitted = Merged +
// Completed.
type ExampleResult struct {
	Submitted int
	Merged    int
	Completed int
	Events    uint64
}

// RunExample runs the block layer on a bare kernel (no filesystem):
// two submitters, a completer, a timeout scanner and a stats reader
// contending on one disk, plus a plugged batch per submitter round.
// It exists so e2e_test.go can pin testdata/blk_doc.golden without
// booting the whole workload, and so blk's deviations can be
// rediscovered in isolation.
func RunExample(w *trace.Writer, seed int64, iterations int) (ExampleResult, error) {
	s := sched.New(seed, 97)
	k := kernel.New(s, w)
	d := locks.NewDomain(k)
	l := New(k, d)

	var res ExampleResult
	var disk *Disk
	k.Go("blkinit", func(c *kernel.Context) {
		disk = l.AddDisk(c, 128)
	})
	s.Run()

	for t := 0; t < 2; t++ {
		k.Go(fmt.Sprintf("blksub/%d", t), func(c *kernel.Context) {
			for i := 0; i < iterations; i++ {
				if i%7 == 6 {
					l.SubmitSplit(c, disk, 16384)
					res.Submitted += 2
				} else {
					l.SubmitBio(c, disk, 4096)
					res.Submitted++
				}
				if i%5 == 4 {
					p := l.StartPlug(c)
					l.PlugBio(c, p, 8192)
					l.PlugBio(c, p, 4096)
					l.SubmitBio(c, disk, 2048)
					l.PlugStats(c, p)
					l.FinishPlug(c, disk, p)
					res.Submitted += 3
				}
				c.Task().Sleep(30)
			}
		})
	}
	k.Go("blkcomp", func(c *kernel.Context) {
		// Dispatch faster than we complete so the in-flight list stays
		// populated — the timeout scanner needs live requests to read.
		for i := 0; i < 4*iterations; i++ {
			l.PeekRequest(c, disk)
			if i%2 == 1 {
				if l.CompleteRequest(c, disk) {
					res.Completed++
				}
			}
			c.Task().Sleep(20)
		}
	})
	k.Go("blktimeo", func(c *kernel.Context) {
		for i := 0; i < iterations; i++ {
			l.TimeoutScan(c, disk)
			c.Task().Sleep(70)
		}
	})
	k.Go("blkstats", func(c *kernel.Context) {
		for i := 0; i < iterations/2+1; i++ {
			l.ReadStats(c, disk)
			if i%3 == 2 {
				l.SetCapacity(c, disk, 1<<21+uint64(i))
			}
			c.Task().Sleep(90)
		}
	})
	k.Go("blksysfs", func(c *kernel.Context) {
		for i := 0; i < iterations/3+1; i++ {
			l.SysfsShow(c, disk)
			if i%4 == 3 {
				l.SysfsStore(c, disk, uint64(96+i), uint64(i*64))
			}
			if i%6 == 5 {
				l.ElvSwitch(c, disk)
			}
			c.Task().Sleep(110)
		}
	})
	s.Run()

	k.Go("blkdown", func(c *kernel.Context) {
		for l.PeekRequest(c, disk) != nil {
		}
		for l.CompleteRequest(c, disk) {
			res.Completed++
		}
		l.Teardown(c)
	})
	s.Run()

	res.Merged = disk.merges
	res.Events = k.EventCount()
	if err := k.Err(); err != nil {
		return res, err
	}
	return res, k.Finish()
}
