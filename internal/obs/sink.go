package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sink renders a gathered snapshot set somewhere. The recording path
// never sees a sink; dumping is always pull-based.
type Sink interface {
	// Write renders the snapshots to w.
	Write(w io.Writer, snaps []Snapshot) error
}

// NewSink maps a -obs-dump format name to a sink: "prom" (Prometheus
// text exposition), "json", or "none".
func NewSink(format string) (Sink, error) {
	switch format {
	case "prom", "prometheus", "text":
		return PrometheusSink{}, nil
	case "json":
		return JSONSink{}, nil
	case "none", "nop", "":
		return NopSink{}, nil
	}
	return nil, fmt.Errorf("obs: unknown sink format %q (want prom, json or none)", format)
}

// PrometheusSink renders the text exposition format, emitting HELP and
// TYPE headers once per metric name so labeled families (e.g.
// per-endpoint histograms sharing one name) stay a single family.
type PrometheusSink struct{}

func (PrometheusSink) Write(w io.Writer, snaps []Snapshot) error {
	var b strings.Builder
	seen := make(map[string]bool, len(snaps))
	for _, s := range snaps {
		if !seen[s.Name] {
			seen[s.Name] = true
			if s.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.Name, s.Help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.Name, s.Kind)
		}
		switch s.Kind {
		case KindHistogram:
			for _, bk := range s.Buckets {
				fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n",
					s.Name, labelPrefix(s.Labels), formatLE(bk.LE), bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", s.Name, braced(s.Labels), formatValue(s.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", s.Name, braced(s.Labels), s.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", s.Name, braced(s.Labels), formatValue(s.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func formatLE(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(le, 'g', -1, 64)
}

// formatValue prints integral values without a decimal point so the
// output matches the hand-rolled exposition this sink replaces (CI
// greps `lockdocd_appends_total 1` literally).
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// JSONSink renders the snapshots as one indented JSON array — the
// -obs-dump=json form, convenient for jq.
type JSONSink struct{}

type jsonMetric struct {
	Name    string       `json:"name"`
	Labels  string       `json:"labels,omitempty"`
	Kind    Kind         `json:"kind"`
	Value   *float64     `json:"value,omitempty"`
	Count   *uint64      `json:"count,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

func (JSONSink) Write(w io.Writer, snaps []Snapshot) error {
	out := make([]jsonMetric, 0, len(snaps))
	for _, s := range snaps {
		m := jsonMetric{Name: s.Name, Labels: s.Labels, Kind: s.Kind}
		if s.Kind == KindHistogram {
			count, sum := s.Count, s.Sum
			m.Count, m.Sum = &count, &sum
			for _, bk := range s.Buckets {
				m.Buckets = append(m.Buckets, jsonBucket{LE: formatLE(bk.LE), Count: bk.Count})
			}
		} else {
			v := s.Value
			m.Value = &v
		}
		out = append(out, m)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// NopSink discards everything — the default when observability is
// registered but nobody asked for a dump.
type NopSink struct{}

func (NopSink) Write(io.Writer, []Snapshot) error { return nil }
