package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Span is one timed phase of the pipeline, optionally nested: an
// ingest span may carry decode and resync children, a derive span one
// child per re-mined group batch. Spans time with the monotonic clock
// (time.Now's hidden reading), so wall-clock steps do not corrupt
// phase durations. All methods are safe on a nil receiver, so code can
// unconditionally open spans and only pay when a root was created.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	mu       sync.Mutex
	children []*Span
	ended    bool
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild opens a nested span under s; on a nil receiver it returns
// nil, keeping the whole subtree free.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's duration. Ending twice keeps the first
// reading.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// Duration returns the frozen duration, or the live elapsed time if the
// span is still open (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// WriteTree renders the span hierarchy as an indented text report, one
// line per span with its duration — the -obs-dump phase breakdown.
func (s *Span) WriteTree(w io.Writer) error {
	if s == nil {
		return nil
	}
	return s.writeTree(w, 0)
}

func (s *Span) writeTree(w io.Writer, depth int) error {
	s.mu.Lock()
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	if _, err := fmt.Fprintf(w, "%s%-*s %12s\n",
		strings.Repeat("  ", depth), 32-2*depth, s.name, dur.Round(time.Microsecond)); err != nil {
		return err
	}
	for _, c := range children {
		if err := c.writeTree(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}
