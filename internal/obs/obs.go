// Package obs is the pipeline-wide observability layer: a
// dependency-free registry of counters, gauges and histograms, plus
// hierarchical wall-clock spans (span.go), pluggable dump sinks
// (sink.go) and an opt-in debug HTTP server exposing the registry and
// net/http/pprof (debug.go).
//
// The design follows DTrace's "always on, near-zero overhead when
// unused" discipline: every instrument is a single atomic operation on
// the hot path, a nil *Registry produces nil instruments, and every
// instrument method is safe on a nil receiver — instrumented code never
// branches on "is observability configured", it just calls Add/Observe
// and the nil receiver turns it into a no-op. Rendering (Prometheus
// text, JSON) happens only when a sink is asked to dump, never on the
// recording path.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric families of a Registry.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Desc is the static identity of one metric: its exposition name, help
// string, kind, and an optional constant label set rendered verbatim
// inside the braces of the Prometheus exposition (e.g.
// `endpoint="/v1/rules"`). Several metrics may share a Name as long as
// their Labels differ — that is how per-endpoint histogram families are
// built without a label API.
type Desc struct {
	Name   string
	Help   string
	Kind   Kind
	Labels string
}

// Snapshot is one metric's point-in-time reading, the unit sinks
// consume.
type Snapshot struct {
	Desc
	// Value carries counter and gauge readings.
	Value float64
	// Count, Sum and Buckets carry histogram readings. Buckets are
	// cumulative, ending with the +Inf bucket (Count again).
	Count   uint64
	Sum     float64
	Buckets []BucketCount
}

type BucketCount struct {
	LE    float64 // upper bound, math.Inf(1) for the last bucket
	Count uint64  // cumulative observations <= LE
}

type metric interface {
	desc() Desc
	snapshot() Snapshot
}

// Registry is an ordered collection of metrics. Registration is
// synchronized; reading and recording are lock-free. A nil *Registry
// is valid and hands out nil instruments, so an unobserved pipeline
// pays only nil checks.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	seen    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{seen: make(map[string]bool)} }

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := m.desc().Name + "{" + m.desc().Labels + "}"
	if r.seen[key] {
		panic(fmt.Sprintf("obs: duplicate metric %s", key))
	}
	r.seen[key] = true
	r.metrics = append(r.metrics, m)
}

// Gather snapshots every registered metric in registration order.
func (r *Registry) Gather() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()
	out := make([]Snapshot, 0, len(metrics))
	for _, m := range metrics {
		out = append(out, m.snapshot())
	}
	return out
}

// Counter registers and returns a monotonic counter. On a nil registry
// it returns nil, which is a valid no-op instrument.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, help, "")
}

// CounterL is Counter with a constant label set.
func (r *Registry) CounterL(name, help, labels string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{d: Desc{Name: name, Help: help, Kind: KindCounter, Labels: labels}}
	r.register(c)
	return c
}

// Gauge registers and returns a settable gauge; nil registry, nil
// gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{d: Desc{Name: name, Help: help, Kind: KindGauge}}
	r.register(g)
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at gather
// time — for readings that already live elsewhere (cache sizes,
// snapshot generations) and would otherwise need write-through
// mirroring.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.GaugeFuncL(name, help, "", fn)
}

// GaugeFuncL is GaugeFunc with a constant label set — one series per
// label value, all computed at gather time (lockdocd uses it for the
// per-namespace resident-bytes and generation gauges).
func (r *Registry) GaugeFuncL(name, help, labels string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&gaugeFunc{d: Desc{Name: name, Help: help, Kind: KindGauge, Labels: labels}, fn: fn})
}

// Histogram registers and returns a histogram over the given bucket
// upper bounds (ascending; the +Inf bucket is implicit). nil registry,
// nil histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramL(name, help, "", buckets)
}

// HistogramL is Histogram with a constant label set.
func (r *Registry) HistogramL(name, help, labels string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefaultLatencyBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
		}
	}
	h := &Histogram{
		d:      Desc{Name: name, Help: help, Kind: KindHistogram, Labels: labels},
		bounds: buckets,
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.register(h)
	return h
}

// DefaultLatencyBuckets covers 10µs..10s — wide enough for both a
// single-group mine (~100µs) and a full cold derivation (~seconds).
var DefaultLatencyBuckets = []float64{
	1e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2, 1e-1, 2.5e-1, 1, 2.5, 10,
}

// Counter is a monotonically increasing metric. All methods are safe on
// a nil receiver (no-op).
type Counter struct {
	d Desc
	v atomic.Uint64
}

func (c *Counter) desc() Desc { return c.d }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) snapshot() Snapshot {
	return Snapshot{Desc: c.d, Value: float64(c.v.Load())}
}

// Gauge is a metric that can go up and down. All methods are safe on a
// nil receiver.
type Gauge struct {
	d Desc
	v atomic.Int64
}

func (g *Gauge) desc() Desc { return g.d }

// Set stores an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc and Dec move the gauge by one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current reading (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) snapshot() Snapshot {
	return Snapshot{Desc: g.d, Value: float64(g.v.Load())}
}

type gaugeFunc struct {
	d  Desc
	fn func() float64
}

func (g *gaugeFunc) desc() Desc { return g.d }
func (g *gaugeFunc) snapshot() Snapshot {
	return Snapshot{Desc: g.d, Value: g.fn()}
}

// Histogram counts observations into cumulative buckets and tracks
// their sum, Prometheus-style. Recording is one atomic add per bucket
// hit plus a CAS loop for the float sum; no locks, safe for concurrent
// use and on a nil receiver.
type Histogram struct {
	d      Desc
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func (h *Histogram) desc() Desc { return h.d }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search is overkill for ~12 buckets; linear scan stays in
	// one cache line.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the span of a
// phase timed with the monotonic clock reading time.Now carries.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) snapshot() Snapshot {
	s := Snapshot{
		Desc:    h.d,
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Buckets: make([]BucketCount, len(h.bounds)+1),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{LE: le, Count: cum}
	}
	return s
}

// SortSnapshots orders snapshots by name then labels — a stable order
// for golden tests that does not depend on registration sequence.
func SortSnapshots(snaps []Snapshot) {
	sort.SliceStable(snaps, func(i, j int) bool {
		if snaps[i].Name != snaps[j].Name {
			return snaps[i].Name < snaps[j].Name
		}
		return snaps[i].Labels < snaps[j].Labels
	})
}
