package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the opt-in -debug-addr endpoint: /metrics in
// Prometheus text form plus the full net/http/pprof surface. It is
// deliberately separate from any application listener so profiling a
// wedged process never competes with its traffic.
type DebugServer struct {
	Addr string // actual listen address (useful with ":0")
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug starts the debug server on addr. The returned server is
// already accepting; call Close to stop it.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		PrometheusSink{}.Write(w, reg.Gather())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ds := &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go srv.Serve(ln)
	return ds, nil
}

// Close stops the listener and in-flight handlers.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
