package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Inc()
	g.Dec()
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments should read zero")
	}
	if snaps := r.Gather(); snaps != nil {
		t.Errorf("nil registry gathered %v", snaps)
	}
	var s *Span
	cs := s.StartChild("x")
	if cs != nil {
		t.Error("nil span should hand out nil children")
	}
	s.End()
	if s.Duration() != 0 || s.Name() != "" {
		t.Error("nil span should read zero")
	}
	if err := s.WriteTree(io.Discard); err != nil {
		t.Error(err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "events")
	g := r.Gauge("groups_live", "live groups")
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1})
	c.Add(3)
	c.Inc()
	g.Set(10)
	g.Add(-3)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	if h.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", h.Count())
	}
	if got, want := h.Sum(), 5.55; got != want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
	snaps := r.Gather()
	if len(snaps) != 3 {
		t.Fatalf("gathered %d snapshots, want 3", len(snaps))
	}
	hs := snaps[2]
	wantCum := []uint64{1, 2, 3}
	for i, bk := range hs.Buckets {
		if bk.Count != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, bk.Count, wantCum[i])
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 4000 {
		t.Errorf("sum = %g, want 4000", h.Sum())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate metric name")
		}
	}()
	r.Counter("dup", "")
}

// TestPrometheusSinkGolden pins the exposition shape: HELP/TYPE once
// per family, integer formatting without decimal points, labeled
// histogram series with cumulative le buckets ending at +Inf.
func TestPrometheusSinkGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lockdocd_requests_total", "HTTP requests served")
	g := r.Gauge("lockdocd_inflight_requests", "requests currently being served")
	h1 := r.HistogramL("lockdocd_request_duration_seconds", "request latency",
		`endpoint="/v1/rules"`, []float64{0.1, 1})
	h2 := r.HistogramL("lockdocd_request_duration_seconds", "",
		`endpoint="/v1/checks"`, []float64{0.1, 1})
	c.Add(2)
	g.Set(1)
	h1.Observe(0.05)
	h1.Observe(0.5)
	h2.Observe(2)

	var b strings.Builder
	if err := (PrometheusSink{}).Write(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lockdocd_requests_total HTTP requests served
# TYPE lockdocd_requests_total counter
lockdocd_requests_total 2
# HELP lockdocd_inflight_requests requests currently being served
# TYPE lockdocd_inflight_requests gauge
lockdocd_inflight_requests 1
# HELP lockdocd_request_duration_seconds request latency
# TYPE lockdocd_request_duration_seconds histogram
lockdocd_request_duration_seconds_bucket{endpoint="/v1/rules",le="0.1"} 1
lockdocd_request_duration_seconds_bucket{endpoint="/v1/rules",le="1"} 2
lockdocd_request_duration_seconds_bucket{endpoint="/v1/rules",le="+Inf"} 2
lockdocd_request_duration_seconds_sum{endpoint="/v1/rules"} 0.55
lockdocd_request_duration_seconds_count{endpoint="/v1/rules"} 2
lockdocd_request_duration_seconds_bucket{endpoint="/v1/checks",le="0.1"} 0
lockdocd_request_duration_seconds_bucket{endpoint="/v1/checks",le="1"} 0
lockdocd_request_duration_seconds_bucket{endpoint="/v1/checks",le="+Inf"} 1
lockdocd_request_duration_seconds_sum{endpoint="/v1/checks"} 2
lockdocd_request_duration_seconds_count{endpoint="/v1/checks"} 1
`
	if b.String() != want {
		t.Errorf("prometheus exposition diverges:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestJSONSink(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.Histogram("b_seconds", "", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := (JSONSink{}).Write(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("sink emitted invalid JSON: %v\n%s", err, b.String())
	}
	if len(out) != 2 {
		t.Fatalf("got %d metrics, want 2", len(out))
	}
	if out[0]["value"].(float64) != 7 {
		t.Errorf("counter value = %v, want 7", out[0]["value"])
	}
	if out[1]["count"].(float64) != 1 {
		t.Errorf("histogram count = %v, want 1", out[1]["count"])
	}
}

func TestNewSink(t *testing.T) {
	for _, tc := range []struct {
		format string
		want   Sink
	}{
		{"prom", PrometheusSink{}}, {"prometheus", PrometheusSink{}}, {"text", PrometheusSink{}},
		{"json", JSONSink{}}, {"none", NopSink{}}, {"", NopSink{}},
	} {
		s, err := NewSink(tc.format)
		if err != nil {
			t.Errorf("NewSink(%q): %v", tc.format, err)
		} else if s != tc.want {
			t.Errorf("NewSink(%q) = %T, want %T", tc.format, s, tc.want)
		}
	}
	if _, err := NewSink("xml"); err == nil {
		t.Error("NewSink(xml) should fail")
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("dynamic", "", func() float64 { return v })
	if got := r.Gather()[0].Value; got != 3 {
		t.Errorf("gauge func = %g, want 3", got)
	}
	v = 9
	if got := r.Gather()[0].Value; got != 9 {
		t.Errorf("gauge func = %g, want 9", got)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("derive")
	child := root.StartChild("mine")
	child.End()
	grand := root.StartChild("check")
	grand.End()
	root.End()
	if root.Duration() <= 0 {
		t.Error("root duration should be positive")
	}
	d := root.Duration()
	time.Sleep(time.Millisecond)
	if root.Duration() != d {
		t.Error("ended span duration should be frozen")
	}
	var b strings.Builder
	if err := root.WriteTree(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{"derive", "mine", "check"} {
		if !strings.Contains(out, name) {
			t.Errorf("tree missing span %q:\n%s", name, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("tree has %d lines, want 3:\n%s", lines, out)
	}
}

func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("debug_hits_total", "hits").Add(5)
	ds, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	resp, err := http.Get("http://" + ds.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "debug_hits_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + ds.Addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d, want 200", resp.StatusCode)
	}
}
