package jbd2

import (
	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
	"lockdoc/internal/sched"
)

// NewJournal allocates and initializes a journal instance. The
// initialization runs inside journal_init_common, which is on the
// function black list — its unlocked member stores are filtered, like
// real object setup (Sec. 5.3).
func NewJournal(c *kernel.Context, k *kernel.Kernel, d *locks.Domain, t *Types) *Journal {
	j := &Journal{K: k, D: d, T: t, F: registerFuncs(k)}
	j.Obj = k.Alloc(c, t.Journal, "")
	j.StateLock = d.RWIn(j.Obj, "j_state_lock")
	j.ListLock = d.SpinIn(j.Obj, "j_list_lock")
	j.CkptMutex = d.MutexIn(j.Obj, "j_checkpoint_mutex")
	j.Barrier = d.MutexIn(j.Obj, "j_barrier")
	j.HistLock = d.SpinIn(j.Obj, "j_history_lock")
	j.waitDone = sched.NewWaitQueue("j_wait_done_commit")
	j.waitUpdates = sched.NewWaitQueue("j_wait_updates")

	defer c.Exit(c.Enter(j.F.journalInit))
	c.Cover(3)
	j.set(c, "j_blocksize", 4096)
	j.set(c, "j_maxlen", 8192)
	j.set(c, "j_format_version", 2)
	j.set(c, "j_first", 1)
	j.set(c, "j_last", 8192)
	j.set(c, "j_free", 8191)
	j.set(c, "j_head", 1)
	j.set(c, "j_tail", 1)
	j.set(c, "j_tail_sequence", 1)
	j.set(c, "j_transaction_sequence", 1)
	j.set(c, "j_commit_sequence", 0)
	j.set(c, "j_commit_request", 0)
	j.set(c, "j_commit_interval", 500)
	j.set(c, "j_max_transaction_buffers", 2048)
	j.set(c, "j_min_batch_time", 0)
	j.set(c, "j_max_batch_time", 15000)
	c.Cover(42)
	return j
}

// Destroy tears the journal down (black-listed context).
func (j *Journal) Destroy(c *kernel.Context) {
	defer c.Exit(c.Enter(j.F.journalDestroy))
	c.Cover(2)
	j.set(c, "j_flags", 1) // JBD2_UNMOUNT
	if j.Running != nil {
		j.K.Free(c, j.Running.Obj)
		j.Running = nil
	}
	for _, t := range j.Checkpoint {
		j.K.Free(c, t.Obj)
	}
	j.Checkpoint = nil
	c.Cover(34)
	j.K.Free(c, j.Obj)
}

// atomicUpdate models atomic_inc/dec on the handle-accounting members
// that were converted to atomic_t: the access happens inside the
// black-listed atomic helper, so the importer drops it — exactly why the
// paper could not validate the stale documented rules for these members.
func (j *Journal) atomicUpdate(c *kernel.Context, t *Transaction, member string, delta uint64) {
	defer c.Exit(c.Enter(j.F.atomicInc))
	t.Obj.Add(c, t.Obj.Typ.MemberIndex(member), delta)
}

// getTransaction creates the next running transaction
// (jbd2_get_transaction is black-listed initialization).
func (j *Journal) getTransaction(c *kernel.Context) *Transaction {
	t := &Transaction{J: j}
	t.Obj = j.K.Alloc(c, j.T.Transaction, "")
	t.HandleLock = j.D.SpinIn(t.Obj, "t_handle_lock")

	defer c.Exit(c.Enter(j.F.txnInit))
	c.Cover(2)
	j.tidSeq++
	t.TID = j.tidSeq
	t.set(c, "t_journal", j.Obj.Addr)
	t.set(c, "t_tid", t.TID)
	t.set(c, "t_state", TRunning)
	t.set(c, "t_start_time", j.K.Sched.Now())
	t.set(c, "t_expires", j.K.Sched.Now()+500)
	t.set(c, "t_max_wait", 0)
	c.Cover(20)
	return t
}

// Handle is a running-transaction handle (handle_t).
type Handle struct {
	T       *Transaction
	credits int
}

// Start opens a handle against the running transaction, creating one if
// necessary (jbd2_journal_start).
func (j *Journal) Start(c *kernel.Context, credits int) *Handle {
	fn := j.F.journalStart
	defer c.Exit(c.Enter(fn))
	c.Cover(5)

	// Speculative lock-free peek at the running transaction, as the
	// real start_this_handle does before committing to the lock.
	_ = j.get(c, "j_running_transaction")

	var t *Transaction
	for {
		j.StateLock.ReadLock(c)
		_ = j.get(c, "j_running_transaction")
		_ = j.get(c, "j_transaction_sequence")
		_ = j.get(c, "j_free")
		t = j.Running
		if t != nil && t.get(c, "t_state") == TRunning {
			// Register the handle while still holding j_state_lock:
			// this pins the transaction — commit drains t_updates
			// before it may retire it (as start_this_handle does).
			t.updates++
			j.StateLock.ReadUnlock(c)
			break
		}
		j.StateLock.ReadUnlock(c)
		if t == nil {
			// Upgrade to the write side and install a new transaction.
			j.StateLock.WriteLock(c)
			if j.Running == nil {
				c.Cover(9)
				nt := j.getTransaction(c)
				j.Running = nt
				j.set(c, "j_running_transaction", nt.Obj.Addr)
				j.set(c, "j_transaction_sequence", nt.TID+1)
			}
			j.StateLock.WriteUnlock(c)
			continue
		}
		// Transaction is locked for commit: wait for it to move on.
		c.Cover(14)
		if task := c.Task(); task != nil {
			task.Block(j.waitDone)
		}
	}

	t.HandleLock.Lock(c)
	c.Cover(20)
	t.set(c, "t_handle_count", t.get(c, "t_handle_count")+1)
	cur := t.get(c, "t_requested")
	t.set(c, "t_requested", cur+uint64(credits))
	if wait := j.K.Sched.Now() - t.Obj.Peek(t.Obj.Typ.MemberIndex("t_start_time")); wait > t.Obj.Peek(t.Obj.Typ.MemberIndex("t_max_wait")) {
		c.Cover(27)
		t.set(c, "t_max_wait", wait)
	}
	t.HandleLock.Unlock(c)
	c.Cover(33)
	j.atomicUpdate(c, t, "t_updates", 1)
	j.atomicUpdate(c, t, "t_outstanding_credits", uint64(credits))
	return &Handle{T: t, credits: credits}
}

// Extend asks for more credits (jbd2_journal_extend).
func (h *Handle) Extend(c *kernel.Context, extra int) bool {
	j := h.T.J
	defer c.Exit(c.Enter(j.F.journalExtend))
	c.Cover(4)
	j.StateLock.ReadLock(c)
	ok := h.T.get(c, "t_state") == TRunning
	if ok {
		c.Cover(11)
		h.T.HandleLock.Lock(c)
		h.T.set(c, "t_requested", h.T.get(c, "t_requested")+uint64(extra))
		h.T.HandleLock.Unlock(c)
		h.credits += extra
	}
	j.StateLock.ReadUnlock(c)
	return ok
}

// Stop closes the handle (jbd2_journal_stop); it may request a commit
// when the transaction is old.
func (h *Handle) Stop(c *kernel.Context) {
	j := h.T.J
	defer c.Exit(c.Enter(j.F.journalStop))
	c.Cover(6)
	// Hot-path read of t_start without locks — tolerated in the real
	// kernel, visible as an ambivalent read rule. (Read before the
	// handle count drops: afterwards the transaction may commit and be
	// checkpointed away.)
	start := h.T.get(c, "t_start")
	tid := h.T.TID
	h.T.HandleLock.Lock(c)
	_ = h.T.get(c, "t_handle_count")
	_ = h.T.get(c, "t_requested")
	_ = h.T.get(c, "t_max_wait")
	h.T.HandleLock.Unlock(c)
	j.atomicUpdate(c, h.T, "t_updates", ^uint64(0)) // atomic_dec
	h.T.updates--
	if h.T.updates == 0 {
		j.K.Sched.WakeAll(j.waitUpdates)
	}
	c.Cover(40)
	if j.K.Sched.Now()-start > 200 {
		c.Cover(46)
		j.logStartCommit(c, tid)
	}
}

// logStartCommit requests a commit of tid (jbd2_log_start_commit).
func (j *Journal) logStartCommit(c *kernel.Context, tid uint64) {
	defer c.Exit(c.Enter(j.F.logStartCommit))
	c.Cover(3)
	j.StateLock.WriteLock(c)
	if j.get(c, "j_commit_request") < tid {
		j.set(c, "j_commit_request", tid)
	}
	j.StateLock.WriteUnlock(c)
}

// TIDGeq compares against the commit sequence without taking
// j_state_lock — a deliberate lock-free read path (jbd2_journal_tid_geq
// style), which surfaces as an ambivalent read rule for
// j_commit_sequence.
func (j *Journal) TIDGeq(c *kernel.Context, tid uint64) bool {
	defer c.Exit(c.Enter(j.F.getTransactionID))
	return j.get(c, "j_commit_sequence") >= tid
}

// WaitCommit blocks until tid is committed (jbd2_log_wait_commit).
func (j *Journal) WaitCommit(c *kernel.Context, tid uint64) {
	defer c.Exit(c.Enter(j.F.logWaitCommit))
	c.Cover(4)
	for {
		j.StateLock.ReadLock(c)
		_ = j.get(c, "j_committing_transaction")
		done := j.get(c, "j_commit_sequence") >= tid
		j.StateLock.ReadUnlock(c)
		if done {
			return
		}
		c.Cover(12)
		if task := c.Task(); task != nil {
			task.Block(j.waitDone)
		} else {
			return
		}
		c.Cover(21)
	}
}

// GetWriteAccess prepares a journaled buffer for modification
// (jbd2_journal_get_write_access): journal_head content is protected by
// the buffer's b_state bit lock, list membership by j_list_lock.
func (h *Handle) GetWriteAccess(c *kernel.Context, jh *JournalHead) {
	j := h.T.J
	defer c.Exit(c.Enter(j.F.getWriteAccess))
	c.Cover(5)
	jh.StateLock.Lock(c)
	_ = jh.get(c, "b_transaction")
	_ = jh.get(c, "b_next_transaction")
	_ = jh.get(c, "b_committed_data")
	jh.set(c, "b_modified", 0)
	frozen := jh.get(c, "b_frozen_data")
	if jh.Txn != nil && jh.Txn != h.T && frozen == 0 {
		// Part of the committing transaction: freeze a copy.
		c.Cover(15)
		jh.set(c, "b_frozen_data", jh.Obj.Addr+1)
		jh.set(c, "b_next_transaction", h.T.Obj.Addr)
	}
	jh.StateLock.Unlock(c)
	c.Cover(26)
	if jh.Txn == nil {
		j.fileBuffer(c, h.T, jh, 1 /* BJ_Metadata */)
	}
}

// DirtyMetadata marks the buffer dirty within the transaction
// (jbd2_journal_dirty_metadata).
func (h *Handle) DirtyMetadata(c *kernel.Context, jh *JournalHead) {
	j := h.T.J
	defer c.Exit(c.Enter(j.F.dirtyMetadata))
	c.Cover(7)
	// Lock-free fast-path check: already part of this transaction?
	if jh.get(c, "b_transaction") == h.T.Obj.Addr && jh.get(c, "b_modified") == 1 {
		c.Cover(12)
		return
	}
	jh.StateLock.Lock(c)
	jh.set(c, "b_modified", 1)
	c.Cover(42)
	if jh.get(c, "b_transaction") != h.T.Obj.Addr {
		c.Cover(48)
		jh.set(c, "b_transaction", h.T.Obj.Addr)
	}
	jh.StateLock.Unlock(c)
}

// fileBuffer links jh into a transaction buffer list
// (__jbd2_journal_file_buffer): list pointers under j_list_lock, with
// the buffer bit lock held around content updates.
func (j *Journal) fileBuffer(c *kernel.Context, t *Transaction, jh *JournalHead, jlist uint64) {
	defer c.Exit(c.Enter(j.F.fileBuffer))
	c.Cover(4)
	_ = jh.get(c, "b_jlist") // lock-free list-membership peek
	jh.StateLock.Lock(c)
	j.ListLock.Lock(c)
	jh.set(c, "b_jlist", jlist)
	jh.set(c, "b_transaction", t.Obj.Addr)
	jh.set(c, "b_tnext", 0)
	jh.set(c, "b_tprev", 0)
	if n := len(t.buffers); n > 0 {
		c.Cover(16)
		prev := t.buffers[n-1]
		prev.set(c, "b_tnext", jh.Obj.Addr)
		jh.set(c, "b_tprev", prev.Obj.Addr)
	}
	t.buffers = append(t.buffers, jh)
	jh.Txn = t
	jh.jlist = jlist
	c.Cover(36)
	t.set(c, "t_buffers", jh.Obj.Addr)
	t.set(c, "t_nr_buffers", uint64(len(t.buffers)))
	j.ListLock.Unlock(c)
	jh.StateLock.Unlock(c)
}

// unfileBuffer removes jh from its transaction list
// (__jbd2_journal_unfile_buffer). Caller holds j_list_lock and the
// buffer bit lock.
func (j *Journal) unfileBuffer(c *kernel.Context, t *Transaction, jh *JournalHead) {
	defer c.Exit(c.Enter(j.F.unfileBuffer))
	c.Cover(3)
	_ = jh.get(c, "b_jlist")
	_ = jh.get(c, "b_tnext")
	_ = jh.get(c, "b_tprev")
	_ = jh.get(c, "b_bh")
	jh.set(c, "b_jlist", 0)
	jh.set(c, "b_transaction", 0)
	jh.set(c, "b_tnext", 0)
	jh.set(c, "b_tprev", 0)
	jh.Txn = nil
	t.set(c, "t_nr_buffers", uint64(len(t.buffers)))
}

// NeedsCommit reports whether a commit was requested (read under the
// state lock read side).
func (j *Journal) NeedsCommit(c *kernel.Context) bool {
	j.StateLock.ReadLock(c)
	defer j.StateLock.ReadUnlock(c)
	_ = j.get(c, "j_head")
	_ = j.get(c, "j_tail")
	return j.get(c, "j_commit_request") > j.get(c, "j_commit_sequence")
}

// Commit runs one commit cycle (jbd2_journal_commit_transaction): lock
// the running transaction, wait for handles to drain, write out its
// buffers, retire it to the checkpoint list and advance the commit
// sequence.
func (j *Journal) Commit(c *kernel.Context) {
	defer c.Exit(c.Enter(j.F.commitTxn))
	c.Cover(8)

	j.StateLock.WriteLock(c)
	t := j.Running
	if t == nil || t.locked {
		// Nothing to do, or another control flow is already committing
		// this transaction.
		j.StateLock.WriteUnlock(c)
		return
	}
	c.Cover(20)
	t.locked = true
	_ = t.get(c, "t_tid")
	_ = t.get(c, "t_expires")
	_ = t.get(c, "t_journal")
	t.set(c, "t_state", TLocked)
	j.StateLock.WriteUnlock(c)

	// Wait for updates to drain.
	for t.updates > 0 {
		c.Cover(31)
		if task := c.Task(); task != nil {
			task.Block(j.waitUpdates)
		} else {
			break
		}
	}

	j.StateLock.WriteLock(c)
	t.set(c, "t_state", TFlush)
	j.Running = nil
	j.Committing = t
	j.set(c, "j_running_transaction", 0)
	j.set(c, "j_committing_transaction", t.Obj.Addr)
	j.StateLock.WriteUnlock(c)

	// Write the buffers: content under the buffer bit lock, list
	// manipulation under j_list_lock.
	c.Cover(60)
	buffers := t.buffers
	for _, jh := range buffers {
		jh.StateLock.Lock(c)
		j.ListLock.Lock(c)
		_ = t.get(c, "t_buffers")
		jh.set(c, "b_committed_data", jh.get(c, "b_frozen_data"))
		jh.set(c, "b_frozen_data", 0)
		jh.set(c, "b_cp_transaction", t.Obj.Addr)
		j.unfileBuffer(c, t, jh)
		j.ListLock.Unlock(c)
		jh.StateLock.Unlock(c)
		c.Tick(3) // simulated IO latency per buffer
	}
	// Shadow/log list bookkeeping for the IO phase (under j_list_lock).
	j.ListLock.Lock(c)
	t.set(c, "t_shadow_list", uint64(len(buffers)))
	t.set(c, "t_log_list", uint64(len(buffers)))
	t.set(c, "t_forget", 0)
	j.ListLock.Unlock(c)
	// Checkpoint back-pointers of the written journal heads are reset
	// WITHOUT j_list_lock on this path — a deviation from the
	// documented rule that the checker marks incorrect.
	for _, jh := range buffers {
		jh.set(c, "b_cpnext", 0)
		jh.set(c, "b_cpprev", 0)
	}

	j.StateLock.WriteLock(c)
	t.set(c, "t_log_start", j.get(c, "j_head"))
	j.StateLock.WriteUnlock(c)
	j.writeStats(c, t)

	j.StateLock.WriteLock(c)
	c.Cover(110)
	t.set(c, "t_state", TFinished)
	j.Committing = nil
	j.set(c, "j_committing_transaction", 0)
	j.set(c, "j_commit_sequence", t.TID)
	j.set(c, "j_head", j.get(c, "j_head")+uint64(len(t.buffers))+1)
	j.set(c, "j_free", j.get(c, "j_free")-uint64(len(t.buffers))-1)
	j.StateLock.WriteUnlock(c)

	// Retire to the checkpoint list (t_cpnext/t_cpprev and
	// t_checkpoint_list under j_list_lock).
	j.ListLock.Lock(c)
	c.Cover(130)
	if n := len(j.Checkpoint); n > 0 {
		prev := j.Checkpoint[n-1]
		prev.set(c, "t_cpnext", t.Obj.Addr)
		t.set(c, "t_cpprev", prev.Obj.Addr)
	}
	t.set(c, "t_checkpoint_list", j.Obj.Addr)
	j.Checkpoint = append(j.Checkpoint, t)
	j.set(c, "j_checkpoint_transactions", t.Obj.Addr)
	j.ListLock.Unlock(c)

	t.buffers = nil
	j.K.Sched.WakeAll(j.waitDone)
}

// writeStats updates commit statistics under j_history_lock
// (fs/jbd2/commit.c's stats path).
func (j *Journal) writeStats(c *kernel.Context, t *Transaction) {
	defer c.Exit(c.Enter(j.F.updateStats))
	c.Cover(3)
	j.HistLock.Lock(c)
	j.set(c, "j_history_cur", j.get(c, "j_history_cur")+1)
	j.set(c, "j_stats.ts_tid", t.TID)
	j.set(c, "j_stats.run_count", j.get(c, "j_stats.run_count")+1)
	j.set(c, "j_average_commit_time", j.K.Sched.Now()-t.get(c, "t_start_time"))
	j.HistLock.Unlock(c)
	// Deliberate deviations mirroring the paper's journal_t findings:
	// the last-sync writer is recorded outside any lock on this path,
	// and the log head is peeked without j_state_lock.
	j.set(c, "j_last_sync_writer", uint64(c.ID()))
	_ = j.get(c, "j_head")
}

// DoCheckpoint flushes old checkpoint transactions and frees them
// (jbd2_log_do_checkpoint).
func (j *Journal) DoCheckpoint(c *kernel.Context) {
	defer c.Exit(c.Enter(j.F.checkpoint))
	c.Cover(5)
	j.CkptMutex.Lock(c)
	j.ListLock.Lock(c)
	_ = j.get(c, "j_checkpoint_transactions")
	_ = j.get(c, "j_tail_sequence")
	var retired []*Transaction
	for _, t := range j.Checkpoint {
		c.Cover(22)
		_ = t.get(c, "t_checkpoint_list")
		_ = t.get(c, "t_nr_buffers")
		_ = t.get(c, "t_cpnext")
		_ = t.get(c, "t_cpprev")
		t.set(c, "t_chp_stats.cs_chp_time", j.K.Sched.Now())
		t.set(c, "t_chp_stats.cs_written", t.get(c, "t_chp_stats.cs_written")+1)
		t.set(c, "t_checkpoint_io_list", 1)
		t.set(c, "t_cpnext", 0)
		t.set(c, "t_cpprev", 0)
		retired = append(retired, t)
	}
	j.Checkpoint = j.Checkpoint[:0]
	j.set(c, "j_checkpoint_transactions", 0)
	j.set(c, "j_tail", j.get(c, "j_head"))
	j.set(c, "j_tail_sequence", j.get(c, "j_commit_sequence"))
	j.ListLock.Unlock(c)
	j.CkptMutex.Unlock(c)
	c.Cover(62)
	for _, t := range retired {
		j.K.Free(c, t.Obj)
	}
}

// ReadStats models the /proc/fs/jbd2 statistics interface: the
// histogram fields are read under j_history_lock, while
// j_last_sync_writer is read with no lock at all — mirroring how the
// real stats code tolerates races on that field.
func (j *Journal) ReadStats(c *kernel.Context) (commits uint64) {
	defer c.Exit(c.Enter(j.F.readStats))
	c.Cover(3)
	j.HistLock.Lock(c)
	commits = j.get(c, "j_stats.run_count")
	_ = j.get(c, "j_stats.ts_tid")
	_ = j.get(c, "j_history_cur")
	_ = j.get(c, "j_average_commit_time")
	j.HistLock.Unlock(c)
	_ = j.get(c, "j_last_sync_writer")
	_ = j.get(c, "j_free")
	_ = j.get(c, "j_tail")
	// Transaction statistics are sampled under j_state_lock even though
	// the buffer counters are documented as j_list_lock-protected — an
	// ambivalence the checker reports, just as in the real stats code.
	j.StateLock.ReadLock(c)
	if t := j.Running; t != nil {
		c.Cover(21)
		_ = t.get(c, "t_nr_buffers")
		_ = t.get(c, "t_state")
	}
	j.StateLock.ReadUnlock(c)
	return commits
}

// AddJournalHead attaches a journal_head to a buffer
// (jbd2_journal_add_journal_head). stateLock is the bit lock living in
// the owning buffer_head's b_state word; bufID identifies the owning
// buffer allocation.
func (j *Journal) AddJournalHead(c *kernel.Context, stateLock *locks.SpinLock, bufID, bufAddr uint64) *JournalHead {
	defer c.Exit(c.Enter(j.F.addJournalHead))
	c.Cover(4)
	jh := &JournalHead{StateLock: stateLock, BufID: bufID}
	jh.Obj = j.K.Alloc(c, j.T.JournalHead, "")
	jh.StateLock.Lock(c)
	jh.set(c, "b_bh", bufAddr)
	jh.set(c, "b_jcount", 1)
	jh.set(c, "b_jlist", 0)
	jh.set(c, "b_modified", 0)
	jh.StateLock.Unlock(c)
	c.Cover(20)
	return jh
}

// PutJournalHead drops the reference and frees the journal_head
// (jbd2_journal_put_journal_head).
func (j *Journal) PutJournalHead(c *kernel.Context, jh *JournalHead) {
	defer c.Exit(c.Enter(j.F.putJournalHead))
	c.Cover(3)
	// Lock-free refcount and buffer-pointer peeks before committing to
	// the lock — tolerated in the real kernel, and among the
	// journal_head deviations the checker flags.
	_ = jh.get(c, "b_jcount")
	_ = jh.get(c, "b_bh")
	jh.StateLock.Lock(c)
	n := jh.get(c, "b_jcount") - 1
	jh.set(c, "b_jcount", n)
	jh.StateLock.Unlock(c)
	c.Cover(16)
	if n == 0 {
		j.K.Free(c, jh.Obj)
	}
}
