// Package jbd2 implements the simulated journaling block device layer
// (fs/jbd2 in Linux), the substrate behind the ext4 filesystem of the
// evaluation: journal_t, transaction_t and journal_head — three of the
// five "relatively well documented" data structures whose locking rules
// the paper validates in Sec. 7.3.
//
// Ground-truth locking (mirroring include/linux/jbd2.h):
//
//   - j_state_lock (rwlock_t in journal_t) protects the journal's
//     transaction state: j_running_transaction,
//     j_committing_transaction, j_commit_sequence, j_commit_request,
//     j_barrier_count, and most transaction_t state fields,
//   - j_list_lock (spinlock_t in journal_t) protects the buffer lists of
//     transactions (t_buffers, t_forget, t_checkpoint_list, ...) and the
//     journal_head list pointers,
//   - t_handle_lock (spinlock_t in transaction_t) protects handle
//     accounting fields,
//   - the per-buffer bit lock ("b_state") protects journal_head
//     content fields (b_modified, b_frozen_data, b_transaction, ...).
//
// Like the real kernel, the code deviates in documented ways:
// t_updates, t_outstanding_credits and t_handle_count are accessed
// exclusively through atomic helpers (the members were converted to
// atomic_t without a documentation update — Sec. 7.3), so the rule
// checker classifies their documented rules as not validatable; and a
// few hot read paths skip j_state_lock.
package jbd2

import (
	"fmt"

	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
	"lockdoc/internal/sched"
)

const (
	u8  = 1
	u16 = 2
	u32 = 4
	u64 = 8
)

// Transaction states (t_state values).
const (
	TRunning uint64 = iota
	TLocked
	TFlush
	TCommit
	TCommitRecord
	TFinished
)

// registerJournalType defines journal_t with 58 members, 11 filtered
// (5 locks, 1 atomic, 5 black-listed wait queues).
func registerJournalType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("journal_t").
		Field("j_flags", u64).
		Field("j_errno", u32).
		Field("j_sb_buffer", u64).
		Field("j_format_version", u32).
		Field("j_barrier_count", u32).
		Field("j_blocksize", u32).
		Field("j_maxlen", u32).
		Field("j_running_transaction", u64).
		Field("j_committing_transaction", u64).
		Field("j_checkpoint_transactions", u64).
		Field("j_head", u64).
		Field("j_tail", u64).
		Field("j_free", u64).
		Field("j_first", u64).
		Field("j_last", u64).
		Field("j_dev", u64).
		Field("j_fs_dev", u64).
		Atomic("j_reserved_credits", u32).       // filtered
		Lock("j_list_lock", u32).                // filtered
		Lock("j_state_lock", u64).               // filtered
		Lock("j_checkpoint_mutex", u64).         // filtered
		Lock("j_barrier", u64).                  // filtered
		Lock("j_history_lock", u32).             // filtered
		Field("j_wait_transaction_locked", u64). // black-listed (wait queue)
		Field("j_wait_done_commit", u64).        // black-listed
		Field("j_wait_commit", u64).             // black-listed
		Field("j_wait_updates", u64).            // black-listed
		Field("j_wait_reserved", u64).           // black-listed
		Field("j_tail_sequence", u64).
		Field("j_transaction_sequence", u64).
		Field("j_commit_sequence", u64).
		Field("j_commit_request", u64).
		Field("j_uuid", u64).
		Field("j_task", u64).
		Field("j_max_transaction_buffers", u32).
		Field("j_commit_interval", u64).
		Field("j_commit_timer", u64).
		Field("j_revoke", u64).
		Field("j_revoke_table", u64).
		Field("j_wbuf", u64).
		Field("j_wbufsize", u32).
		Field("j_last_sync_writer", u64).
		Field("j_average_commit_time", u64).
		Field("j_min_batch_time", u32).
		Field("j_max_batch_time", u32).
		Field("j_commit_callback", u64).
		Field("j_failed_commit", u64).
		Field("j_chksum_driver", u64).
		Field("j_csum_seed", u32).
		Field("j_devname", u64).
		Field("j_superblock", u64).
		Field("j_errseq", u32).
		Field("j_private", u64).
		Field("j_history", u64).
		Field("j_history_max", u32).
		Field("j_history_cur", u32).
		Field("j_stats.ts_tid", u64).
		Field("j_stats.run_count", u64))
}

// registerTransactionType defines transaction_t with 27 members,
// 1 filtered (t_handle_lock).
func registerTransactionType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("transaction_t").
		Field("t_journal", u64).
		Field("t_tid", u64).
		Field("t_state", u64).
		Field("t_log_start", u64).
		Field("t_nr_buffers", u32).
		Field("t_reserved_list", u64).
		Field("t_buffers", u64).
		Field("t_forget", u64).
		Field("t_checkpoint_list", u64).
		Field("t_checkpoint_io_list", u64).
		Field("t_shadow_list", u64).
		Field("t_log_list", u64).
		Lock("t_handle_lock", u32). // filtered
		Field("t_updates", u32).
		Field("t_outstanding_credits", u32).
		Field("t_handle_count", u32).
		Field("t_expires", u64).
		Field("t_start_time", u64).
		Field("t_start", u64).
		Field("t_requested", u64).
		Field("t_max_wait", u64).
		Field("t_chp_stats.cs_chp_time", u64).
		Field("t_chp_stats.cs_forced_to_close", u32).
		Field("t_chp_stats.cs_written", u32).
		Field("t_chp_stats.cs_dropped", u32).
		Field("t_cpnext", u64).
		Field("t_cpprev", u64))
}

// registerJournalHeadType defines journal_head with 15 members, none
// filtered. Its protecting bit lock lives in the owning buffer_head's
// b_state word.
func registerJournalHeadType(k *kernel.Kernel) *kernel.TypeInfo {
	return k.Register(kernel.NewType("journal_head").
		Field("b_bh", u64).
		Field("b_jcount", u32).
		Field("b_jlist", u32).
		Field("b_modified", u32).
		Field("b_frozen_data", u64).
		Field("b_committed_data", u64).
		Field("b_transaction", u64).
		Field("b_next_transaction", u64).
		Field("b_cp_transaction", u64).
		Field("b_tnext", u64).
		Field("b_tprev", u64).
		Field("b_cpnext", u64).
		Field("b_cpprev", u64).
		Field("b_triggers", u64).
		Field("b_frozen_triggers", u64))
}

// Types bundles the jbd2 data types.
type Types struct {
	Journal     *kernel.TypeInfo
	Transaction *kernel.TypeInfo
	JournalHead *kernel.TypeInfo
}

// RegisterTypes registers journal_t, transaction_t and journal_head.
func RegisterTypes(k *kernel.Kernel) *Types {
	return &Types{
		Journal:     registerJournalType(k),
		Transaction: registerTransactionType(k),
		JournalHead: registerJournalHeadType(k),
	}
}

// MemberBlacklist returns the jbd2 part of the member black list: the
// wait-queue members of journal_t are out of scope (Sec. 5.3).
func MemberBlacklist() map[string][]string {
	return map[string][]string{
		"journal_t": {
			"j_wait_transaction_locked", "j_wait_done_commit",
			"j_wait_commit", "j_wait_updates", "j_wait_reserved",
		},
	}
}

// funcs collects the simulated fs/jbd2 source functions.
type funcs struct {
	journalStart     *kernel.FuncInfo
	journalStop      *kernel.FuncInfo
	journalExtend    *kernel.FuncInfo
	getWriteAccess   *kernel.FuncInfo
	dirtyMetadata    *kernel.FuncInfo
	commitTxn        *kernel.FuncInfo
	checkpoint       *kernel.FuncInfo
	addJournalHead   *kernel.FuncInfo
	putJournalHead   *kernel.FuncInfo
	fileBuffer       *kernel.FuncInfo
	unfileBuffer     *kernel.FuncInfo
	logStartCommit   *kernel.FuncInfo
	logWaitCommit    *kernel.FuncInfo
	updateStats      *kernel.FuncInfo
	atomicInc        *kernel.FuncInfo
	readStats        *kernel.FuncInfo
	journalInit      *kernel.FuncInfo
	journalDestroy   *kernel.FuncInfo
	txnInit          *kernel.FuncInfo
	getTransactionID *kernel.FuncInfo
}

func registerFuncs(k *kernel.Kernel) *funcs {
	f := &funcs{
		journalStart:     k.Func("fs/jbd2/transaction.c", 435, "jbd2_journal_start", 40),
		journalStop:      k.Func("fs/jbd2/transaction.c", 1680, "jbd2_journal_stop", 55),
		journalExtend:    k.Func("fs/jbd2/transaction.c", 620, "jbd2_journal_extend", 45),
		getWriteAccess:   k.Func("fs/jbd2/transaction.c", 1040, "jbd2_journal_get_write_access", 35),
		dirtyMetadata:    k.Func("fs/jbd2/transaction.c", 1280, "jbd2_journal_dirty_metadata", 60),
		commitTxn:        k.Func("fs/jbd2/commit.c", 380, "jbd2_journal_commit_transaction", 220),
		checkpoint:       k.Func("fs/jbd2/checkpoint.c", 340, "jbd2_log_do_checkpoint", 80),
		addJournalHead:   k.Func("fs/jbd2/journal.c", 2460, "jbd2_journal_add_journal_head", 30),
		putJournalHead:   k.Func("fs/jbd2/journal.c", 2520, "jbd2_journal_put_journal_head", 25),
		fileBuffer:       k.Func("fs/jbd2/transaction.c", 2180, "__jbd2_journal_file_buffer", 50),
		unfileBuffer:     k.Func("fs/jbd2/transaction.c", 2090, "__jbd2_journal_unfile_buffer", 30),
		logStartCommit:   k.Func("fs/jbd2/journal.c", 480, "jbd2_log_start_commit", 25),
		logWaitCommit:    k.Func("fs/jbd2/journal.c", 640, "jbd2_log_wait_commit", 30),
		updateStats:      k.Func("fs/jbd2/commit.c", 120, "write_tag_block", 25),
		atomicInc:        k.Func("fs/jbd2/transaction.c", 30, "atomic_inc", 3),
		readStats:        k.Func("fs/jbd2/journal.c", 980, "jbd2_seq_info_show", 35),
		journalInit:      k.Func("fs/jbd2/journal.c", 1130, "journal_init_common", 60),
		journalDestroy:   k.Func("fs/jbd2/journal.c", 1740, "jbd2_journal_destroy", 50),
		txnInit:          k.Func("fs/jbd2/transaction.c", 60, "jbd2_get_transaction", 30),
		getTransactionID: k.Func("fs/jbd2/journal.c", 760, "jbd2_journal_tid_geq", 8),
	}
	// Cold jbd2 paths never exercised by the benchmark mix (recovery,
	// revocation, aborts) — they keep the fs/jbd2 coverage realistic.
	k.Func("fs/jbd2/recovery.c", 60, "jbd2_journal_recover", 90)
	k.Func("fs/jbd2/recovery.c", 300, "do_one_pass", 260)
	k.Func("fs/jbd2/revoke.c", 330, "jbd2_journal_revoke", 70)
	k.Func("fs/jbd2/revoke.c", 480, "jbd2_journal_cancel_revoke", 55)
	k.Func("fs/jbd2/journal.c", 2060, "jbd2_journal_abort", 45)
	k.Func("fs/jbd2/journal.c", 2140, "jbd2_journal_errno", 20)
	k.Func("fs/jbd2/checkpoint.c", 560, "jbd2_cleanup_journal_tail", 45)
	return f
}

// FuncBlacklist returns the jbd2 function names whose dynamic extent is
// filtered during import: initialization/teardown and atomic helpers.
func FuncBlacklist() []string {
	return []string{"journal_init_common", "jbd2_journal_destroy", "jbd2_get_transaction", "atomic_inc"}
}

// Journal is a live journal instance (one per ext4 superblock).
type Journal struct {
	K *kernel.Kernel
	D *locks.Domain
	T *Types
	F *funcs

	Obj       *kernel.Object
	StateLock *locks.RWLock
	ListLock  *locks.SpinLock
	CkptMutex *locks.Mutex
	Barrier   *locks.Mutex
	HistLock  *locks.SpinLock

	waitDone    *sched.WaitQueue // j_wait_done_commit
	waitUpdates *sched.WaitQueue // j_wait_updates

	Running    *Transaction
	Committing *Transaction
	Checkpoint []*Transaction

	tidSeq uint64
}

// Transaction is a live transaction_t instance.
type Transaction struct {
	J          *Journal
	Obj        *kernel.Object
	HandleLock *locks.SpinLock
	TID        uint64

	buffers []*JournalHead
	forget  []*JournalHead
	updates int
	locked  bool // commit in progress
}

// JournalHead is a live journal_head instance. Its protecting bit lock
// (the buffer's b_state bit spinlock) is owned by the buffer_head
// allocation, so accesses to journal_head fields under it appear as EO
// locks — as they do in the real kernel.
type JournalHead struct {
	Obj       *kernel.Object
	StateLock *locks.SpinLock // bit lock living in the owning buffer_head
	BufID     uint64          // allocation ID of the owning buffer_head
	Txn       *Transaction
	jlist     uint64
}

// member index helpers
func (j *Journal) set(c *kernel.Context, m string, v uint64) {
	j.Obj.Store(c, j.Obj.Typ.MemberIndex(m), v)
}
func (j *Journal) get(c *kernel.Context, m string) uint64 {
	return j.Obj.Load(c, j.Obj.Typ.MemberIndex(m))
}
func (t *Transaction) set(c *kernel.Context, m string, v uint64) {
	t.Obj.Store(c, t.Obj.Typ.MemberIndex(m), v)
}
func (t *Transaction) get(c *kernel.Context, m string) uint64 {
	return t.Obj.Load(c, t.Obj.Typ.MemberIndex(m))
}
func (jh *JournalHead) set(c *kernel.Context, m string, v uint64) {
	jh.Obj.Store(c, jh.Obj.Typ.MemberIndex(m), v)
}
func (jh *JournalHead) get(c *kernel.Context, m string) uint64 {
	return jh.Obj.Load(c, jh.Obj.Typ.MemberIndex(m))
}

// String identifies the journal in diagnostics.
func (j *Journal) String() string { return fmt.Sprintf("journal#%d", j.Obj.ID) }
