package jbd2

import (
	"bytes"
	"testing"

	"lockdoc/internal/db"
	"lockdoc/internal/kernel"
	"lockdoc/internal/locks"
	"lockdoc/internal/sched"
	"lockdoc/internal/trace"
)

type rig struct {
	K   *kernel.Kernel
	D   *locks.Domain
	T   *Types
	buf bytes.Buffer
	// bufType hosts the bit locks journal heads hang off.
	bufType *kernel.TypeInfo
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	r := &rig{}
	w, err := trace.NewWriter(&r.buf)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(seed, 0)
	r.K = kernel.New(s, w)
	r.D = locks.NewDomain(r.K)
	s.DeadlockInfo = r.D.DescribeHeld
	r.T = RegisterTypes(r.K)
	r.bufType = r.K.Register(kernel.NewType("buffer_head_stub").
		Field("b_state", 8))
	return r
}

func (r *rig) run(t *testing.T, body func(c *kernel.Context)) {
	t.Helper()
	r.K.Go("test", body)
	r.K.Sched.Run()
	if err := r.K.Err(); err != nil {
		t.Fatal(err)
	}
}

// newJH allocates a stub buffer and a journal head attached to it.
func (r *rig) newJH(c *kernel.Context, j *Journal) (*JournalHead, *kernel.Object) {
	buf := r.K.Alloc(c, r.bufType, "")
	lock := r.D.SpinAt(buf, "b_state")
	jh := j.AddJournalHead(c, lock, buf.ID, buf.Addr)
	return jh, buf
}

func TestTypeMemberCounts(t *testing.T) {
	r := newRig(t, 1)
	cases := map[*kernel.TypeInfo]int{
		r.T.Journal:     58,
		r.T.Transaction: 27,
		r.T.JournalHead: 15,
	}
	for ti, want := range cases {
		if ti.MemberCount() != want {
			t.Errorf("%s has %d members, want %d", ti.Name, ti.MemberCount(), want)
		}
	}
	// journal_t: 5 locks + 1 atomic filtered in-type, 5 more members on
	// the black list.
	var lockN, atomicN int
	for _, m := range r.T.Journal.Members {
		if m.IsLock {
			lockN++
		}
		if m.Atomic {
			atomicN++
		}
	}
	if lockN != 5 || atomicN != 1 {
		t.Errorf("journal_t locks/atomics = %d/%d, want 5/1", lockN, atomicN)
	}
}

func TestHandleLifecycle(t *testing.T) {
	r := newRig(t, 2)
	r.run(t, func(c *kernel.Context) {
		j := NewJournal(c, r.K, r.D, r.T)
		h := j.Start(c, 4)
		if h.T != j.Running {
			t.Error("handle not bound to the running transaction")
		}
		if j.Running.updates != 1 {
			t.Errorf("updates = %d, want 1", j.Running.updates)
		}
		if !h.Extend(c, 2) {
			t.Error("extend failed on a running transaction")
		}
		h.Stop(c)
		if j.Running.updates != 0 {
			t.Errorf("updates = %d after stop", j.Running.updates)
		}
		j.Destroy(c)
	})
}

func TestCommitRetiresTransaction(t *testing.T) {
	r := newRig(t, 2)
	r.run(t, func(c *kernel.Context) {
		j := NewJournal(c, r.K, r.D, r.T)
		h := j.Start(c, 4)
		jh, _ := r.newJH(c, j)
		h.GetWriteAccess(c, jh)
		h.DirtyMetadata(c, jh)
		first := h.T
		h.Stop(c)

		j.Commit(c)
		if j.Running != nil {
			t.Error("running transaction not cleared by commit")
		}
		if len(j.Checkpoint) != 1 || j.Checkpoint[0] != first {
			t.Error("committed transaction not on the checkpoint list")
		}
		if jh.Txn != nil {
			t.Error("journal head still filed after commit")
		}
		seq := j.Obj.Peek(j.Obj.Typ.MemberIndex("j_commit_sequence"))
		if seq != first.TID {
			t.Errorf("j_commit_sequence = %d, want %d", seq, first.TID)
		}

		j.DoCheckpoint(c)
		if len(j.Checkpoint) != 0 {
			t.Error("checkpoint did not retire the transaction")
		}
		if first.Obj.Live() {
			t.Error("checkpointed transaction not freed")
		}
		j.PutJournalHead(c, jh)
		j.Destroy(c)
	})
}

func TestCommitWaitsForHandles(t *testing.T) {
	r := newRig(t, 3)
	var order []string
	r.run(t, func(c *kernel.Context) {
		j := NewJournal(c, r.K, r.D, r.T)
		h := j.Start(c, 2)
		r.K.Go("committer", func(c *kernel.Context) {
			j.Commit(c)
			order = append(order, "committed")
		})
		r.K.Go("worker", func(c *kernel.Context) {
			for i := 0; i < 5; i++ {
				c.Task().Yield()
			}
			order = append(order, "stopping")
			h.Stop(c)
		})
		r.K.Go("cleanup", func(c *kernel.Context) {
			for j.Running != nil || j.Committing != nil {
				c.Task().Yield()
			}
			j.DoCheckpoint(c)
			j.Destroy(c)
		})
	})
	if len(order) != 2 || order[0] != "stopping" || order[1] != "committed" {
		t.Errorf("order = %v; commit must wait for the open handle", order)
	}
}

func TestStartBlocksDuringCommitLock(t *testing.T) {
	r := newRig(t, 4)
	r.run(t, func(c *kernel.Context) {
		j := NewJournal(c, r.K, r.D, r.T)
		h := j.Start(c, 2)
		first := h.T.TID
		h.Stop(c)
		j.Commit(c)
		// After the commit a new Start must create a fresh transaction.
		h2 := j.Start(c, 2)
		if h2.T.TID == first {
			t.Error("start reused the committed transaction")
		}
		h2.Stop(c)
		j.Commit(c)
		j.DoCheckpoint(c)
		j.Destroy(c)
	})
}

func TestWaitCommit(t *testing.T) {
	r := newRig(t, 5)
	woke := false
	r.run(t, func(c *kernel.Context) {
		j := NewJournal(c, r.K, r.D, r.T)
		h := j.Start(c, 2)
		tid := h.T.TID
		h.Stop(c)
		r.K.Go("waiter", func(c *kernel.Context) {
			j.WaitCommit(c, tid)
			woke = true
		})
		r.K.Go("committer", func(c *kernel.Context) {
			for i := 0; i < 3; i++ {
				c.Task().Yield()
			}
			j.Commit(c)
			for j.Committing != nil {
				c.Task().Yield()
			}
		})
		r.K.Go("cleanup", func(c *kernel.Context) {
			for !woke {
				c.Task().Yield()
			}
			j.DoCheckpoint(c)
			j.Destroy(c)
		})
	})
	if !woke {
		t.Error("WaitCommit never returned")
	}
}

func TestLogStartCommitRaisesRequest(t *testing.T) {
	r := newRig(t, 6)
	r.run(t, func(c *kernel.Context) {
		j := NewJournal(c, r.K, r.D, r.T)
		j.logStartCommit(c, 7)
		if got := j.Obj.Peek(j.Obj.Typ.MemberIndex("j_commit_request")); got != 7 {
			t.Errorf("j_commit_request = %d, want 7", got)
		}
		j.logStartCommit(c, 3) // lower tid must not regress the request
		if got := j.Obj.Peek(j.Obj.Typ.MemberIndex("j_commit_request")); got != 7 {
			t.Errorf("j_commit_request regressed to %d", got)
		}
		if !j.NeedsCommit(c) {
			t.Error("NeedsCommit = false with pending request")
		}
		j.Destroy(c)
	})
}

func TestJournalHeadRefcounting(t *testing.T) {
	r := newRig(t, 7)
	r.run(t, func(c *kernel.Context) {
		j := NewJournal(c, r.K, r.D, r.T)
		jh, _ := r.newJH(c, j)
		obj := jh.Obj
		jh.StateLock.Lock(c)
		jh.set(c, "b_jcount", 2) // extra reference
		jh.StateLock.Unlock(c)
		j.PutJournalHead(c, jh)
		if !obj.Live() {
			t.Error("journal head freed with references remaining")
		}
		j.PutJournalHead(c, jh)
		if obj.Live() {
			t.Error("journal head not freed at zero references")
		}
		j.Destroy(c)
	})
}

// TestAtomicMembersInvisible verifies the stale-documentation mechanism
// of Sec. 7.3: t_updates/t_outstanding_credits are only touched inside
// the black-listed atomic helper, so the importer sees no observations
// for them.
func TestAtomicMembersInvisible(t *testing.T) {
	r := newRig(t, 8)
	r.run(t, func(c *kernel.Context) {
		j := NewJournal(c, r.K, r.D, r.T)
		h := j.Start(c, 4)
		h.Stop(c)
		j.Commit(c)
		j.DoCheckpoint(c)
		j.Destroy(c)
	})
	if err := r.K.Finish(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.NewReader(bytes.NewReader(r.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := db.Config{
		FuncBlacklist:   FuncBlacklist(),
		MemberBlacklist: MemberBlacklist(),
	}
	d, err := db.Import(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, member := range []string{"t_updates", "t_outstanding_credits"} {
		for _, write := range []bool{false, true} {
			if g, ok := d.Group("transaction_t", "", member, write); ok && g.Total > 0 {
				t.Errorf("%s observations leaked past the atomic-helper black list", member)
			}
		}
	}
	// The wait-queue members are dropped by the member black list.
	if g, ok := d.Group("journal_t", "", "j_wait_commit", true); ok && g.Total > 0 {
		t.Error("black-listed member j_wait_commit observed")
	}
}

// TestStateLockProtectsTransactionState is the ground truth behind the
// transaction_t rows of Tab. 4: every t_state write runs under
// j_state_lock.
func TestStateLockProtectsTransactionState(t *testing.T) {
	r := newRig(t, 9)
	r.run(t, func(c *kernel.Context) {
		j := NewJournal(c, r.K, r.D, r.T)
		for i := 0; i < 3; i++ {
			h := j.Start(c, 2)
			h.Stop(c)
			j.Commit(c)
		}
		j.DoCheckpoint(c)
		j.Destroy(c)
	})
	if err := r.K.Finish(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.NewReader(bytes.NewReader(r.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Import(tr, db.Config{
		FuncBlacklist:   FuncBlacklist(),
		MemberBlacklist: MemberBlacklist(),
	})
	if err != nil {
		t.Fatal(err)
	}
	g, ok := d.Group("transaction_t", "", "t_state", true)
	if !ok {
		t.Fatal("no t_state write group")
	}
	key, ok := d.KeyByString("EO(j_state_lock in journal_t)")
	if !ok {
		t.Fatal("state-lock key not interned")
	}
	for _, so := range g.Seqs {
		found := false
		for _, k := range so.Seq {
			if k == key {
				found = true
			}
		}
		if !found {
			t.Errorf("t_state written under %q", d.SeqString(so.Seq))
		}
	}
}

func TestFuncBlacklistComplete(t *testing.T) {
	bl := FuncBlacklist()
	want := map[string]bool{
		"journal_init_common": true, "jbd2_journal_destroy": true,
		"jbd2_get_transaction": true, "atomic_inc": true,
	}
	for _, name := range bl {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Errorf("black list misses %v", want)
	}
}
