// Package locsrc reproduces Figure 1 of the paper: the growth of lock
// usage (calls to lock-related initialization functions) and of the code
// base itself across Linux releases v3.0 to v4.18.
//
// The paper counts initializer calls in 39 real kernel source trees.
// Those trees are not available offline, so this package substitutes a
// synthetic source corpus: a deterministic generator emits C-like source
// files per version whose volume and initializer density follow the
// growth trend the paper reports (+73% LoC, +45% spinlock usage with a
// slight dip in the last releases, +81% mutex usage), at 1:1000 scale.
// The *scanner* is the real artifact here — it counts the same tokens a
// scan of the real trees would count — and the figure regenerates from
// scanning actual generated text, not from the model directly.
package locsrc

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
)

// Version identifies one kernel release.
type Version struct {
	Major, Minor int
}

// String renders "v4.10".
func (v Version) String() string { return fmt.Sprintf("v%d.%d", v.Major, v.Minor) }

// Versions returns the release range of Fig. 1: v3.0..v3.19 and
// v4.0..v4.18.
func Versions() []Version {
	var out []Version
	for m := 0; m <= 19; m++ {
		out = append(out, Version{3, m})
	}
	for m := 0; m <= 18; m++ {
		out = append(out, Version{4, m})
	}
	return out
}

// SourceFile is one generated file of the synthetic tree.
type SourceFile struct {
	Path    string
	Content string
}

// Tree is a synthetic source tree for one version.
type Tree struct {
	Version Version
	Files   []SourceFile
}

// Scale is the down-scaling factor of the synthetic corpus relative to
// the real kernel (the real v4.18 tree has ~17M lines; the synthetic one
// has ~17k).
const Scale = 1000

// model returns the target totals for a version, before noise:
// lines of code, spinlock inits, mutex inits and RCU initializers —
// calibrated to the paper's reported growth (all divided by Scale for
// LoC; lock counts are kept at natural size since they are in the
// thousands already).
func model(v Version) (loc, spin, mutex, rcu float64) {
	// Linear position t in [0,1] across the release range.
	idx := 0
	all := Versions()
	for i, o := range all {
		if o == v {
			idx = i
			break
		}
	}
	t := float64(idx) / float64(len(all)-1)

	loc = (9_800_000 + t*(16_900_000-9_800_000)) / Scale // +73% per paper (Fig. 1 right axis)
	// Spinlock usage: +45% overall with a slight decrease over the last
	// releases.
	spin = 4000 + t*2200
	if t > 0.85 {
		spin -= (t - 0.85) * 2800
	}
	mutex = 2200 + t*1800 // +81%
	rcu = 1100 + t*1600
	return loc, spin, mutex, rcu
}

var subsystems = []string{
	"fs", "mm", "net/core", "drivers/block", "drivers/net", "kernel",
	"drivers/char", "sound/core", "block", "security",
}

// Generate produces the synthetic tree for one version. The same
// (version, seed) pair always yields identical files.
func Generate(v Version, seed int64) Tree {
	rng := rand.New(rand.NewSource(seed ^ int64(v.Major*1000+v.Minor)))
	locT, spinT, mutexT, rcuT := model(v)

	// Spread the totals over subsystem files with noise.
	tree := Tree{Version: v}
	nFiles := len(subsystems)
	remLoc := int(locT)
	remSpin := int(spinT / 40) // corpus carries 1/40 of the init sites
	remMutex := int(mutexT / 40)
	remRcu := int(rcuT / 40)
	for i, sub := range subsystems {
		last := i == nFiles-1
		share := func(rem int) int {
			if last {
				return rem
			}
			n := rem / (nFiles - i)
			n += rng.Intn(n/4+1) - n/8
			if n < 0 {
				n = 0
			}
			if n > rem {
				n = rem
			}
			return n
		}
		loc := share(remLoc)
		spin := share(remSpin)
		mutex := share(remMutex)
		rcu := share(remRcu)
		remLoc -= loc
		remSpin -= spin
		remMutex -= mutex
		remRcu -= rcu
		tree.Files = append(tree.Files, SourceFile{
			Path:    fmt.Sprintf("%s/%s_%s.c", sub, strings.ReplaceAll(sub, "/", "_"), v),
			Content: renderFile(rng, loc, spin, mutex, rcu),
		})
	}
	return tree
}

// renderFile emits C-like text with the requested number of lines and
// embedded initializer calls.
func renderFile(rng *rand.Rand, lines, spin, mutex, rcu int) string {
	var b strings.Builder
	b.Grow(lines * 24)
	emitted := 0
	emit := func(s string) {
		b.WriteString(s)
		b.WriteByte('\n')
		emitted++
	}
	inits := make([]string, 0, spin+mutex+rcu)
	for i := 0; i < spin; i++ {
		inits = append(inits, fmt.Sprintf("\tspin_lock_init(&obj%d->lock);", i))
	}
	for i := 0; i < mutex; i++ {
		inits = append(inits, fmt.Sprintf("\tmutex_init(&dev%d->mtx);", i))
	}
	for i := 0; i < rcu; i++ {
		inits = append(inits, fmt.Sprintf("\tinit_rcu_head(&el%d->rcu);", i))
	}
	rng.Shuffle(len(inits), func(i, j int) { inits[i], inits[j] = inits[j], inits[i] })

	perInit := 1
	if len(inits) > 0 {
		perInit = lines / (len(inits) + 1)
	}
	fn := 0
	for _, init := range inits {
		fn++
		emit(fmt.Sprintf("static int setup_%d(struct device *dev)", fn))
		emit("{")
		for l := 0; l < perInit-4 && emitted < lines; l++ {
			emit(fmt.Sprintf("\tdev->field%d = %d;", l, rng.Intn(1000)))
		}
		emit(init)
		emit("}")
	}
	for emitted < lines {
		emit(fmt.Sprintf("/* filler line %d */", emitted))
	}
	return b.String()
}

// Counts is the scan result for one version.
type Counts struct {
	Version  Version
	LoC      int
	Spinlock int
	Mutex    int
	RCU      int
}

// Scan counts lines and lock-initializer calls in a tree — the same
// token counting a grep over a real kernel tree performs.
func Scan(t Tree) Counts {
	c := Counts{Version: t.Version}
	for _, f := range t.Files {
		c.LoC += strings.Count(f.Content, "\n")
		c.Spinlock += strings.Count(f.Content, "spin_lock_init(")
		c.Mutex += strings.Count(f.Content, "mutex_init(")
		c.RCU += strings.Count(f.Content, "init_rcu_head(")
	}
	// The corpus carries 1/40 of the initializer sites (Generate);
	// scale the counts back to tree-level numbers.
	c.Spinlock *= 40
	c.Mutex *= 40
	c.RCU *= 40
	return c
}

// ScanAll generates and scans every version.
func ScanAll(seed int64) []Counts {
	versions := Versions()
	out := make([]Counts, 0, len(versions))
	for _, v := range versions {
		out = append(out, Scan(Generate(v, seed)))
	}
	return out
}

// RenderFigure1 prints the Fig. 1 series as a table plus growth summary.
func RenderFigure1(w io.Writer, seed int64) {
	counts := ScanAll(seed)
	fmt.Fprintf(w, "%-8s %12s %10s %10s %10s\n", "Version", "LoC(x1000)", "Spinlock", "Mutex", "RCU")
	for i, c := range counts {
		if i%4 != 0 && i != len(counts)-1 {
			continue // print every 4th release, like the figure's ticks
		}
		fmt.Fprintf(w, "%-8s %12d %10d %10d %10d\n", c.Version, c.LoC, c.Spinlock, c.Mutex, c.RCU)
	}
	first, last := counts[0], counts[len(counts)-1]
	fmt.Fprintf(w, "growth v3.0 -> v4.18: LoC %+.0f%%, spinlock %+.0f%%, mutex %+.0f%%, rcu %+.0f%%\n",
		pct(first.LoC, last.LoC), pct(first.Spinlock, last.Spinlock),
		pct(first.Mutex, last.Mutex), pct(first.RCU, last.RCU))
}

func pct(from, to int) float64 {
	if from == 0 {
		return 0
	}
	return 100 * (float64(to) - float64(from)) / float64(from)
}
