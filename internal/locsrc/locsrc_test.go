package locsrc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestVersionsRange(t *testing.T) {
	vs := Versions()
	if len(vs) != 39 {
		t.Fatalf("got %d versions, want 39 (v3.0..v3.19, v4.0..v4.18)", len(vs))
	}
	if vs[0].String() != "v3.0" || vs[len(vs)-1].String() != "v4.18" {
		t.Errorf("range = %s..%s", vs[0], vs[len(vs)-1])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	v := Version{4, 10}
	a := Generate(v, 42)
	b := Generate(v, 42)
	if len(a.Files) != len(b.Files) {
		t.Fatal("file count differs between identical generations")
	}
	for i := range a.Files {
		if a.Files[i].Content != b.Files[i].Content {
			t.Fatalf("file %s differs between identical generations", a.Files[i].Path)
		}
	}
	c := Generate(v, 43)
	same := true
	for i := range a.Files {
		if a.Files[i].Content != c.Files[i].Content {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical corpus")
	}
}

func TestScanCountsTokens(t *testing.T) {
	tree := Tree{Version: Version{4, 0}, Files: []SourceFile{{
		Path: "fs/x.c",
		Content: "int a;\n\tspin_lock_init(&l);\n\tmutex_init(&m);\n" +
			"\tmutex_init(&m2);\n\tinit_rcu_head(&r);\nint b;\n",
	}}}
	c := Scan(tree)
	if c.LoC != 6 {
		t.Errorf("LoC = %d, want 6", c.LoC)
	}
	if c.Spinlock != 1*40 || c.Mutex != 2*40 || c.RCU != 1*40 {
		t.Errorf("counts = %d/%d/%d", c.Spinlock, c.Mutex, c.RCU)
	}
}

// TestGrowthTrends checks the figure's headline numbers: the paper
// reports +73% LoC, ~+45% spinlock usage (with a late dip) and ~+81%
// mutex usage between v3.0 and v4.18.
func TestGrowthTrends(t *testing.T) {
	counts := ScanAll(42)
	first, last := counts[0], counts[len(counts)-1]
	growth := func(a, b int) float64 { return 100 * (float64(b) - float64(a)) / float64(a) }

	if g := growth(first.LoC, last.LoC); g < 60 || g > 90 {
		t.Errorf("LoC growth = %.0f%%, want ~73%%", g)
	}
	if g := growth(first.Spinlock, last.Spinlock); g < 30 || g > 60 {
		t.Errorf("spinlock growth = %.0f%%, want ~45%%", g)
	}
	if g := growth(first.Mutex, last.Mutex); g < 65 || g > 100 {
		t.Errorf("mutex growth = %.0f%%, want ~81%%", g)
	}
	// The late-release spinlock dip: the maximum must not be the final
	// release.
	maxSpin, maxIdx := 0, 0
	for i, c := range counts {
		if c.Spinlock > maxSpin {
			maxSpin, maxIdx = c.Spinlock, i
		}
	}
	if maxIdx == len(counts)-1 {
		t.Error("spinlock usage has no late dip")
	}
	// Monotone LoC growth.
	for i := 1; i < len(counts); i++ {
		if counts[i].LoC < counts[i-1].LoC {
			t.Errorf("LoC shrank at %s", counts[i].Version)
		}
	}
}

func TestRenderFigure1(t *testing.T) {
	var sb strings.Builder
	RenderFigure1(&sb, 42)
	out := sb.String()
	for _, want := range []string{"v3.0", "v4.18", "Spinlock", "Mutex", "RCU", "growth"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output lacks %q", want)
		}
	}
}

// Property: scanning a generated tree never reports more initializer
// tokens than lines, and all counts are non-negative.
func TestScanSanityProperty(t *testing.T) {
	prop := func(seed int64, idx uint8) bool {
		vs := Versions()
		v := vs[int(idx)%len(vs)]
		c := Scan(Generate(v, seed))
		if c.LoC <= 0 || c.Spinlock < 0 || c.Mutex < 0 || c.RCU < 0 {
			return false
		}
		return (c.Spinlock+c.Mutex+c.RCU)/40 <= c.LoC
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
