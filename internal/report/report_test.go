package report

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"lockdoc/internal/analysis"
	"lockdoc/internal/core"
	"lockdoc/internal/db"
	"lockdoc/internal/kernel"
	"lockdoc/internal/sched"
	"lockdoc/internal/trace"
	"lockdoc/internal/workload"
)

// clockDB builds the Tab. 1/2 input from the clock example.
func clockDB(t *testing.T) *db.DB {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.RunClockExample(w, 1, 600); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Import(r, db.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTable1RendersMatrix(t *testing.T) {
	d := clockDB(t)
	var sb strings.Builder
	Table1(&sb, d)
	out := sb.String()
	for _, want := range []string{"seconds", "minutes", "Observed", "Folded", "WoR"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 lacks %q:\n%s", want, out)
		}
	}
}

func TestTable2MarksWinner(t *testing.T) {
	d := clockDB(t)
	g, ok := d.Group("clock", "", "minutes", true)
	if !ok {
		t.Fatal("no group")
	}
	res := core.Derive(context.Background(), d, g, core.Options{AcceptThreshold: 0.9})
	var sb strings.Builder
	Table2(&sb, d, res)
	out := sb.String()
	if !strings.Contains(out, "<- winner") {
		t.Error("winner not marked")
	}
	if !strings.Contains(out, "no lock needed") {
		t.Error("no-lock hypothesis missing")
	}
	if !strings.Contains(out, "sec_lock -> min_lock") {
		t.Error("combined rule missing")
	}
}

func TestTable3HandlesUnknownDir(t *testing.T) {
	k := kernel.New(sched.New(1, 0), nil)
	fn := k.Func("fs/x.c", 1, "f", 10)
	k.Go("t", func(c *kernel.Context) {
		defer c.Exit(c.Enter(fn))
		c.Cover(4)
	})
	k.Sched.Run()
	var sb strings.Builder
	Table3(&sb, k, []string{"fs", "no/such/dir"})
	out := sb.String()
	if !strings.Contains(out, "fs") || !strings.Contains(out, "no functions registered") {
		t.Errorf("Table 3 output wrong:\n%s", out)
	}
}

func TestTable4And5(t *testing.T) {
	sums := []analysis.CheckSummary{{
		Type: "inode", Rules: 14, NotObs: 3, Observed: 11,
		Correct: 2, Ambivalent: 5, Incorrect: 4,
	}}
	var sb strings.Builder
	Table4(&sb, sums)
	if !strings.Contains(sb.String(), "inode") || !strings.Contains(sb.String(), "18.18") {
		t.Errorf("Table 4 wrong:\n%s", sb.String())
	}

	results := []analysis.CheckResult{
		{Spec: analysis.RuleSpec{Type: "inode", Member: "i_state", Write: true,
			Locks: []string{"ES(inode.i_lock)"}}, Verdict: analysis.Correct, Sr: 1.0},
		{Spec: analysis.RuleSpec{Type: "inode", Member: "i_size", Write: false,
			Locks: []string{"ES(inode.i_lock)"}}, Verdict: analysis.Incorrect, Sr: 0},
		{Spec: analysis.RuleSpec{Type: "inode", Member: "i_wb_list", Write: false,
			Locks: []string{"x"}}, Verdict: analysis.NotObserved},
		{Spec: analysis.RuleSpec{Type: "dentry", Member: "d_flags", Write: false,
			Locks: []string{"y"}}, Verdict: analysis.Correct, Sr: 1.0},
	}
	sb.Reset()
	Table5(&sb, results, "inode")
	out := sb.String()
	if !strings.Contains(out, "i_state") || !strings.Contains(out, "i_size") {
		t.Errorf("Table 5 lacks members:\n%s", out)
	}
	if strings.Contains(out, "i_wb_list") {
		t.Error("Table 5 shows unobserved rules")
	}
	if strings.Contains(out, "d_flags") {
		t.Error("Table 5 leaks other types")
	}
}

func TestTable6(t *testing.T) {
	var sb strings.Builder
	Table6(&sb, []analysis.MiningSummary{{
		TypeLabel: "inode:ext4", Members: 65, Blacklisted: 5,
		RulesRead: 45, RulesWrite: 30, NoLockRead: 36, NoLockWrite: 4,
	}})
	out := sb.String()
	if !strings.Contains(out, "inode:ext4") || !strings.Contains(out, "45/30") {
		t.Errorf("Table 6 wrong:\n%s", out)
	}
}

func TestFigure7(t *testing.T) {
	points := []analysis.SweepPoint{
		{Threshold: 0.9, Fractions: map[string]map[string]float64{
			"dentry": {"r": 50, "w": 10},
		}},
		{Threshold: 1.0, Fractions: map[string]map[string]float64{
			"dentry": {"r": 80, "w": 20},
		}},
	}
	var sb strings.Builder
	Figure7(&sb, points, false)
	out := sb.String()
	if !strings.Contains(out, "dentry") || !strings.Contains(out, "50.0") || !strings.Contains(out, "80.0") {
		t.Errorf("Figure 7 wrong:\n%s", out)
	}
	sb.Reset()
	Figure7(&sb, nil, true)
	if !strings.Contains(sb.String(), "Figure 7") {
		t.Error("empty sweep must still print a header")
	}
}

func TestTable7And8(t *testing.T) {
	var sb strings.Builder
	Table7(&sb, []analysis.ViolationSummary{
		{TypeLabel: "buffer_head", Events: 45325, Members: 4, Contexts: 635},
		{TypeLabel: "cdev", Events: 0, Members: 0, Contexts: 0},
	})
	out := sb.String()
	if !strings.Contains(out, "45325") || !strings.Contains(out, "total: 45325 events at 635 contexts") {
		t.Errorf("Table 7 wrong:\n%s", out)
	}

	sb.Reset()
	Table8(&sb, []analysis.ViolationExample{{
		TypeMember: "inode:ext4.i_hash",
		Rule:       "inode_hash_lock -> ES(i_lock in inode)",
		Held:       "inode_hash_lock -> EO(i_lock in inode)",
		Location:   "fs/inode.c:507",
		Stack:      "iput -> evict -> __remove_inode_hash",
		Events:     12,
	}})
	out = sb.String()
	for _, want := range []string{"i_hash", "fs/inode.c:507", "__remove_inode_hash", "12 events"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 8 lacks %q:\n%s", want, out)
		}
	}
}

func TestTraceStats(t *testing.T) {
	var sb strings.Builder
	TraceStats(&sb, trace.Stats{Events: 100, LockOps: 10}, db.New(db.Config{}))
	if !strings.Contains(sb.String(), "100 recorded events") {
		t.Errorf("stats output wrong:\n%s", sb.String())
	}
}

func TestIngestStatsCleanAndDegraded(t *testing.T) {
	d := clockDB(t)
	var buf bytes.Buffer
	IngestStats(&buf, d)
	out := buf.String()
	if !strings.Contains(out, "transactions reconstructed") {
		t.Errorf("missing transaction count:\n%s", out)
	}
	if !strings.Contains(out, "clean ingest") {
		t.Errorf("clean DB not reported as clean:\n%s", out)
	}

	// A degraded DB surfaces the drop counters and every corruption.
	d.Corruptions = append(d.Corruptions, trace.CorruptionReport{Offset: 128, BytesSkipped: 16})
	d.BytesSkipped = 16
	buf.Reset()
	IngestStats(&buf, d)
	out = buf.String()
	if !strings.Contains(out, "degraded:") || !strings.Contains(out, "corruption at") {
		t.Errorf("degraded DB not reported:\n%s", out)
	}
}
