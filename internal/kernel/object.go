package kernel

import (
	"fmt"

	"lockdoc/internal/trace"
)

// TypeInfo describes an observed data type: its name and member layout.
// Member offsets are assigned sequentially by the builder; the index of a
// member doubles as its accessor handle.
type TypeInfo struct {
	ID      uint32
	Name    string
	Size    uint32
	Members []trace.MemberDef

	byName map[string]int
}

// TypeBuilder assembles a TypeInfo. Offsets are assigned in declaration
// order, mirroring a C struct layout.
type TypeBuilder struct {
	name    string
	members []trace.MemberDef
	off     uint32
}

// NewType starts building a data type.
func NewType(name string) *TypeBuilder { return &TypeBuilder{name: name} }

func (b *TypeBuilder) add(name string, size uint32, atomic, isLock bool) *TypeBuilder {
	// Natural alignment, as the C ABI would impose.
	if size > 0 {
		align := size
		if align > 8 {
			align = 8
		}
		b.off = (b.off + align - 1) &^ (align - 1)
	}
	b.members = append(b.members, trace.MemberDef{
		Name: name, Offset: b.off, Size: size, Atomic: atomic, IsLock: isLock,
	})
	b.off += size
	return b
}

// Field declares a plain data member of the given size in bytes.
func (b *TypeBuilder) Field(name string, size uint32) *TypeBuilder {
	return b.add(name, size, false, false)
}

// Atomic declares an atomic_t-style member (filtered from rule mining).
func (b *TypeBuilder) Atomic(name string, size uint32) *TypeBuilder {
	return b.add(name, size, true, false)
}

// Lock declares a member that is itself a lock variable.
func (b *TypeBuilder) Lock(name string, size uint32) *TypeBuilder {
	return b.add(name, size, false, true)
}

// Register finalizes the type and registers it with the kernel. It
// panics if the name is already taken: type identity must be unique.
func (k *Kernel) Register(b *TypeBuilder) *TypeInfo {
	if _, dup := k.typeByName[b.name]; dup {
		panic("kernel: duplicate type " + b.name)
	}
	t := &TypeInfo{
		ID:      uint32(len(k.types) + 1),
		Name:    b.name,
		Size:    (b.off + 7) &^ 7,
		Members: b.members,
		byName:  make(map[string]int, len(b.members)),
	}
	for i, m := range t.Members {
		if _, dup := t.byName[m.Name]; dup {
			panic(fmt.Sprintf("kernel: duplicate member %s.%s", b.name, m.Name))
		}
		t.byName[m.Name] = i
	}
	k.types = append(k.types, t)
	k.typeByName[b.name] = t
	k.emit(&trace.Event{Kind: trace.KindDefType, TypeID: t.ID, TypeName: t.Name, Members: t.Members})
	return t
}

// Types returns all registered types.
func (k *Kernel) Types() []*TypeInfo { return k.types }

// TypeByName looks a registered type up by name.
func (k *Kernel) TypeByName(name string) (*TypeInfo, bool) {
	t, ok := k.typeByName[name]
	return t, ok
}

// MemberIndex returns the accessor handle for a member name; it panics
// for unknown members — that is a programming error in the simulated
// kernel, not an input condition.
func (t *TypeInfo) MemberIndex(name string) int {
	i, ok := t.byName[name]
	if !ok {
		panic(fmt.Sprintf("kernel: type %s has no member %s", t.Name, name))
	}
	return i
}

// MemberCount returns the number of members.
func (t *TypeInfo) MemberCount() int { return len(t.Members) }

// Object is a live instance of an observed data type.
type Object struct {
	k        *Kernel
	ID       uint64
	Typ      *TypeInfo
	Addr     uint64
	Subclass string

	vals []uint64
	live bool
}

// Alloc allocates an instance of t, emitting an allocation event.
// subclass refines the type (e.g. the backing filesystem of an inode)
// and may be empty. Addresses are recycled slab-style: a freed address
// of the same type is reused before fresh address space is consumed.
func (k *Kernel) Alloc(c *Context, t *TypeInfo, subclass string) *Object {
	k.nextAllocID++
	var addr uint64
	if fl := k.freeLists[t]; len(fl) > 0 {
		addr = fl[len(fl)-1]
		k.freeLists[t] = fl[:len(fl)-1]
	} else {
		addr = k.dynBrk
		k.dynBrk += uint64(t.Size) + 64 // red zone between objects
	}
	o := &Object{
		k: k, ID: k.nextAllocID, Typ: t, Addr: addr, Subclass: subclass,
		vals: make([]uint64, len(t.Members)), live: true,
	}
	k.liveAllocs[o.ID] = o
	k.emit(&trace.Event{
		Kind: trace.KindAlloc, Ctx: c.id, AllocID: o.ID, TypeID: t.ID,
		Addr: addr, Size: t.Size, Subclass: subclass,
	})
	return o
}

// Free releases o, emitting a deallocation event and recycling its
// address. Accessing a freed object panics (use-after-free is a bug in
// the simulated kernel, not something to trace silently).
func (k *Kernel) Free(c *Context, o *Object) {
	if !o.live {
		panic(fmt.Sprintf("kernel: double free of %s #%d", o.Typ.Name, o.ID))
	}
	o.live = false
	delete(k.liveAllocs, o.ID)
	k.freeLists[o.Typ] = append(k.freeLists[o.Typ], o.Addr)
	k.emit(&trace.Event{Kind: trace.KindFree, Ctx: c.id, AllocID: o.ID, Addr: o.Addr})
}

// LiveAllocations reports the number of live objects (leak checking in
// tests).
func (k *Kernel) LiveAllocations() int { return len(k.liveAllocs) }

// Live reports whether the object has not been freed.
func (o *Object) Live() bool { return o.live }

// MemberAddr returns the absolute address of member m.
func (o *Object) MemberAddr(m int) uint64 {
	return o.Addr + uint64(o.Typ.Members[m].Offset)
}

func (o *Object) access(c *Context, m int, kind trace.Kind, value uint64) {
	if !o.live {
		panic(fmt.Sprintf("kernel: use after free of %s.%s #%d",
			o.Typ.Name, o.Typ.Members[m].Name, o.ID))
	}
	md := &o.Typ.Members[m]
	var fnID uint32
	if top := c.Top(); top != nil {
		fnID = top.ID
	}
	o.k.emit(&trace.Event{
		Kind: kind, Ctx: c.id, Addr: o.Addr + uint64(md.Offset),
		AccessSize: md.Size, FuncID: fnID, StackID: c.internStack(),
		Value: value,
	})
	c.Tick(o.k.MemTicks)
}

// Load reads member m, emitting a read event.
func (o *Object) Load(c *Context, m int) uint64 {
	o.access(c, m, trace.KindRead, 0)
	return o.vals[m]
}

// Store writes member m, emitting a write event carrying the stored
// value (pointer values let the relation miner follow object graphs).
func (o *Object) Store(c *Context, m int, v uint64) {
	o.access(c, m, trace.KindWrite, v)
	o.vals[m] = v
}

// Add adds delta to member m (a read-modify-write: both events are
// emitted, as the paper's WoR folding expects).
func (o *Object) Add(c *Context, m int, delta uint64) uint64 {
	v := o.Load(c, m) + delta
	o.Store(c, m, v)
	return v
}

// Peek returns the member value without emitting an event. It models
// accesses performed through untraced channels and is used by test
// assertions.
func (o *Object) Peek(m int) uint64 { return o.vals[m] }

// Poke sets the member value without emitting an event.
func (o *Object) Poke(m int, v uint64) { o.vals[m] = v }
