// Package kernel implements the instrumented-target runtime of LockDoc's
// monitoring phase: an object/type registry with member layouts, a bump
// allocator handing out synthetic addresses, instrumented member
// accessors that emit read/write trace events, simulated call stacks
// with source locations, and line-coverage accounting.
//
// The package plays the role of the source-code instrumentation plus the
// Fail*/Bochs memory-access listeners of the paper: every allocation,
// deallocation, member access and (via the locks package) lock operation
// of the simulated kernel flows through here and into a trace.Writer.
package kernel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"lockdoc/internal/sched"
	"lockdoc/internal/trace"
)

// Address-space layout of the simulated kernel. Static (global) data
// lives below dynBase; dynamic allocations are handed out above it.
const (
	staticBase = 0x0000_1000
	dynBase    = 0x0100_0000
)

// Kernel ties together the scheduler, the trace writer and the
// instrumentation registries. All methods must be called from simulated
// control flows (which the scheduler serializes), never from multiple
// goroutines at once.
type Kernel struct {
	Sched *sched.Scheduler

	tw  *trace.Writer
	seq uint64

	types      []*TypeInfo
	typeByName map[string]*TypeInfo

	funcs     []*FuncInfo
	funcByKey map[string]*FuncInfo

	stacks    map[string]uint32
	nextStack uint32

	ctxs    []*Context
	nextCtx uint32

	nextAllocID uint64
	nextLockID  uint64
	dynBrk      uint64
	staticBrk   uint64
	freeLists   map[*TypeInfo][]uint64 // recycled addresses, slab-style
	liveAllocs  map[uint64]*Object     // by allocation ID

	// MemTicks is the pseudo-time cost charged per member access
	// (drives preemption realism). Defaults to 1.
	MemTicks int

	err error // first trace-write error; checked at Finish
}

// New creates a kernel writing its trace to w, scheduled by s.
func New(s *sched.Scheduler, w *trace.Writer) *Kernel {
	return &Kernel{
		Sched:      s,
		tw:         w,
		typeByName: make(map[string]*TypeInfo),
		funcByKey:  make(map[string]*FuncInfo),
		stacks:     make(map[string]uint32),
		dynBrk:     dynBase,
		staticBrk:  staticBase,
		freeLists:  make(map[*TypeInfo][]uint64),
		liveAllocs: make(map[uint64]*Object),
		MemTicks:   1,
	}
}

// Err returns the first error encountered while emitting trace events.
func (k *Kernel) Err() error {
	if k.err != nil {
		return k.err
	}
	if k.tw != nil {
		return k.tw.Err()
	}
	return nil
}

// Finish flushes the trace.
func (k *Kernel) Finish() error {
	if k.err != nil {
		return k.err
	}
	if k.tw == nil {
		return nil
	}
	return k.tw.Flush()
}

// EventCount reports the number of trace events emitted so far.
func (k *Kernel) EventCount() uint64 { return k.seq }

func (k *Kernel) emit(ev *trace.Event) {
	k.seq++
	ev.Seq = k.seq
	ev.TS = k.Sched.Now()
	if k.tw == nil || k.err != nil {
		return
	}
	if err := k.tw.Write(ev); err != nil && k.err == nil {
		k.err = err
	}
}

// StaticAddr reserves size bytes of static (global) address space; used
// for globally defined locks.
func (k *Kernel) StaticAddr(size uint32) uint64 {
	a := k.staticBrk
	k.staticBrk += uint64(size+7) &^ 7
	return a
}

// DefineLock assigns a fresh lock ID and emits its definition event.
// ownerAddr is zero for global locks. The locks package is the only
// intended caller.
func (k *Kernel) DefineLock(name string, class trace.LockClass, lockAddr, ownerAddr uint64) uint64 {
	k.nextLockID++
	k.emit(&trace.Event{
		Kind: trace.KindDefLock, LockID: k.nextLockID, LockName: name,
		Class: class, LockAddr: lockAddr, OwnerAddr: ownerAddr,
	})
	return k.nextLockID
}

// EmitLockOp records an acquire or release of the given lock in context
// c. The locks package is the only intended caller.
func (k *Kernel) EmitLockOp(c *Context, kind trace.Kind, lockID uint64, reader bool, fnID, line uint32) {
	k.emit(&trace.Event{
		Kind: kind, Ctx: c.id, LockID: lockID, Reader: reader,
		FuncID: fnID, Line: line,
	})
}

// Context is one simulated execution context: a task, a softirq or a
// hardirq. It carries the simulated call stack used for source
// attribution of events.
type Context struct {
	k    *Kernel
	id   uint32
	kind trace.CtxKind
	task *sched.Task // nil for interrupt contexts

	stack   []*FuncInfo
	stackID uint32 // interned ID of the current stack, 0 = dirty
}

// NewContext registers an execution context of the given kind. For task
// contexts, t is the backing scheduler task; interrupt contexts pass nil.
func (k *Kernel) NewContext(kind trace.CtxKind, name string, t *sched.Task) *Context {
	k.nextCtx++
	c := &Context{k: k, id: k.nextCtx, kind: kind, task: t}
	k.ctxs = append(k.ctxs, c)
	k.emit(&trace.Event{Kind: trace.KindDefCtx, CtxID: c.id, CtxKind: kind, CtxName: name})
	return c
}

// Go spawns a simulated kernel thread and returns its context. The body
// receives the context; the underlying scheduler task is reachable via
// Task().
func (k *Kernel) Go(name string, body func(*Context)) *Context {
	var c *Context
	t := k.Sched.Go(name, func(task *sched.Task) {
		body(c)
	})
	c = k.NewContext(trace.CtxTask, name, t)
	return c
}

// Kernel returns the owning kernel.
func (c *Context) Kernel() *Kernel { return c.k }

// ID returns the trace context ID.
func (c *Context) ID() uint32 { return c.id }

// Kind returns the context kind.
func (c *Context) Kind() trace.CtxKind { return c.kind }

// Task returns the scheduler task backing a task context, or nil for
// interrupt contexts.
func (c *Context) Task() *sched.Task { return c.task }

// Tick charges n pseudo-time units; in task contexts this is a
// preemption point.
func (c *Context) Tick(n int) {
	if c.task != nil {
		c.task.Tick(n)
	}
}

// RegisterIRQ installs an interrupt source firing on average every
// `every` ticks. The handler runs in a dedicated interrupt context.
func (k *Kernel) RegisterIRQ(kind trace.CtxKind, name string, every int, handler func(*Context)) *Context {
	c := k.NewContext(kind, name, nil)
	k.Sched.RegisterIRQ(name, every, func() { handler(c) })
	return c
}

// FuncInfo describes a simulated source-level function.
type FuncInfo struct {
	ID    uint32
	File  string
	Line  uint32 // line of the function definition
	Name  string
	Lines uint32 // total source lines attributed to this function

	covered map[uint32]bool
	hit     bool
}

// Hit reports whether the function has ever executed.
func (f *FuncInfo) Hit() bool { return f.hit }

// Dir returns the source directory of the function's file, e.g.
// "fs/ext4" for "fs/ext4/inode.c".
func (f *FuncInfo) Dir() string {
	if i := strings.LastIndexByte(f.File, '/'); i >= 0 {
		return f.File[:i]
	}
	return "."
}

// Func registers (or returns the already-registered) function at
// file:line. lines is the number of source lines the function spans and
// feeds the coverage report.
func (k *Kernel) Func(file string, line uint32, name string, lines uint32) *FuncInfo {
	key := fmt.Sprintf("%s:%d:%s", file, line, name)
	if f, ok := k.funcByKey[key]; ok {
		return f
	}
	f := &FuncInfo{
		ID: uint32(len(k.funcs) + 1), File: file, Line: line, Name: name,
		Lines: lines, covered: make(map[uint32]bool),
	}
	k.funcs = append(k.funcs, f)
	k.funcByKey[key] = f
	k.emit(&trace.Event{Kind: trace.KindDefFunc, FuncID: f.ID, File: file, Line: line, Func: name})
	return f
}

// Funcs returns all registered functions.
func (k *Kernel) Funcs() []*FuncInfo { return k.funcs }

// Enter pushes fn onto the context's simulated call stack and emits a
// function-entry event. It returns fn so the idiomatic call is
//
//	defer c.Exit(c.Enter(fn))
func (c *Context) Enter(fn *FuncInfo) *FuncInfo {
	c.stack = append(c.stack, fn)
	c.stackID = 0
	fn.hit = true
	fn.covered[0] = true
	c.k.emit(&trace.Event{Kind: trace.KindFuncEnter, Ctx: c.id, FuncID: fn.ID})
	return fn
}

// Exit pops fn from the call stack. Popping out of order panics: that is
// a bug in the simulated kernel code.
func (c *Context) Exit(fn *FuncInfo) {
	if len(c.stack) == 0 || c.stack[len(c.stack)-1] != fn {
		panic(fmt.Sprintf("kernel: unbalanced Exit(%s) in ctx %d", fn.Name, c.id))
	}
	c.stack = c.stack[:len(c.stack)-1]
	c.stackID = 0
	c.k.emit(&trace.Event{Kind: trace.KindFuncExit, Ctx: c.id, FuncID: fn.ID})
}

// Depth reports the current call-stack depth.
func (c *Context) Depth() int { return len(c.stack) }

// Top returns the innermost function, or nil at top level.
func (c *Context) Top() *FuncInfo {
	if len(c.stack) == 0 {
		return nil
	}
	return c.stack[len(c.stack)-1]
}

// InFunction reports whether fn is anywhere on the current call stack.
func (c *Context) InFunction(fn *FuncInfo) bool {
	for _, f := range c.stack {
		if f == fn {
			return true
		}
	}
	return false
}

// Cover marks the basic block ending at source line (fn.Line + off) of
// the innermost function as executed: all lines between the closest
// previously covered line and off are recorded, the way a GCOV basic
// block covers its whole extent. Simulated function bodies call it at
// branch points.
func (c *Context) Cover(off uint32) {
	fn := c.Top()
	if fn == nil {
		return
	}
	if fn.covered[off] {
		return
	}
	// Find the closest covered line below off; the block spans from
	// there (exclusive) to off (inclusive).
	start := uint32(0)
	for l := range fn.covered {
		if l < off && l >= start {
			start = l + 1
		}
	}
	if off >= fn.Lines {
		off = fn.Lines - 1
	}
	for l := start; l <= off; l++ {
		fn.covered[l] = true
	}
	c.k.emit(&trace.Event{Kind: trace.KindCoverage, Ctx: c.id, FuncID: fn.ID, Line: fn.Line + off})
}

// internStack builds (and caches) the interned ID for the current call
// stack. This runs on every traced memory access, so key construction
// avoids fmt.
func (c *Context) internStack() uint32 {
	if c.stackID != 0 {
		return c.stackID
	}
	buf := make([]byte, 0, len(c.stack)*4)
	funcs := make([]uint32, len(c.stack))
	for i, f := range c.stack {
		buf = strconv.AppendUint(buf, uint64(f.ID), 10)
		buf = append(buf, ',')
		funcs[i] = f.ID
	}
	key := string(buf)
	id, ok := c.k.stacks[key]
	if !ok {
		c.k.nextStack++
		id = c.k.nextStack
		c.k.stacks[key] = id
		c.k.emit(&trace.Event{Kind: trace.KindDefStack, Ctx: c.id, StackID: id, StackFuncs: funcs})
	}
	c.stackID = id
	return id
}

// CoverageLine summarizes line/function coverage for one directory.
type CoverageLine struct {
	Dir          string
	LinesCovered int
	LinesTotal   int
	FuncsCovered int
	FuncsTotal   int
}

// LinePct returns the covered-line percentage.
func (c CoverageLine) LinePct() float64 {
	if c.LinesTotal == 0 {
		return 0
	}
	return 100 * float64(c.LinesCovered) / float64(c.LinesTotal)
}

// FuncPct returns the covered-function percentage.
func (c CoverageLine) FuncPct() float64 {
	if c.FuncsTotal == 0 {
		return 0
	}
	return 100 * float64(c.FuncsCovered) / float64(c.FuncsTotal)
}

// Coverage aggregates per-directory line and function coverage over all
// registered functions, in the style of the paper's Tab. 3 (GCOV).
func (k *Kernel) Coverage() []CoverageLine {
	byDir := make(map[string]*CoverageLine)
	for _, f := range k.funcs {
		cl := byDir[f.Dir()]
		if cl == nil {
			cl = &CoverageLine{Dir: f.Dir()}
			byDir[f.Dir()] = cl
		}
		cl.LinesTotal += int(f.Lines)
		cl.FuncsTotal++
		if f.hit {
			cl.FuncsCovered++
			n := len(f.covered)
			if n > int(f.Lines) {
				n = int(f.Lines)
			}
			cl.LinesCovered += n
		}
	}
	out := make([]CoverageLine, 0, len(byDir))
	for _, cl := range byDir {
		out = append(out, *cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dir < out[j].Dir })
	return out
}
