package kernel

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"lockdoc/internal/sched"
	"lockdoc/internal/trace"
)

// newTestKernel returns a kernel writing into buf.
func newTestKernel(t *testing.T, seed int64) (*Kernel, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return New(sched.New(seed, 0), w), &buf
}

func readTrace(t *testing.T, k *Kernel, buf *bytes.Buffer) []trace.Event {
	t.Helper()
	if err := k.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestTypeBuilderLayout(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	ti := k.Register(NewType("demo").
		Field("a", 8).
		Field("b", 4).
		Lock("lk", 4).
		Atomic("cnt", 4).
		Field("c", 8))
	if ti.MemberCount() != 5 {
		t.Fatalf("MemberCount = %d, want 5", ti.MemberCount())
	}
	wantOffsets := []uint32{0, 8, 12, 16, 24}
	for i, w := range wantOffsets {
		if got := ti.Members[i].Offset; got != w {
			t.Errorf("member %d offset = %d, want %d", i, got, w)
		}
	}
	if !ti.Members[2].IsLock {
		t.Error("lk not marked as lock")
	}
	if !ti.Members[3].Atomic {
		t.Error("cnt not marked atomic")
	}
	if ti.Size%8 != 0 {
		t.Errorf("size %d not 8-aligned", ti.Size)
	}
}

func TestDuplicateTypePanics(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	k.Register(NewType("dup").Field("x", 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate type")
		}
	}()
	k.Register(NewType("dup").Field("y", 8))
}

func TestDuplicateMemberPanics(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate member")
		}
	}()
	k.Register(NewType("t").Field("x", 8).Field("x", 4))
}

func TestAllocAccessFreeEmitsEvents(t *testing.T) {
	k, buf := newTestKernel(t, 1)
	ti := k.Register(NewType("widget").Field("w", 8).Field("v", 4))
	mW := ti.MemberIndex("w")
	mV := ti.MemberIndex("v")
	fn := k.Func("fs/widget.c", 10, "widget_use", 20)
	k.Go("worker", func(c *Context) {
		defer c.Exit(c.Enter(fn))
		o := k.Alloc(c, ti, "sub")
		o.Store(c, mW, 42)
		if got := o.Load(c, mW); got != 42 {
			t.Errorf("Load = %d, want 42", got)
		}
		o.Add(c, mV, 7)
		k.Free(c, o)
	})
	k.Sched.Run()
	evs := readTrace(t, k, buf)

	var kinds []trace.Kind
	for _, ev := range evs {
		kinds = append(kinds, ev.Kind)
	}
	counts := map[trace.Kind]int{}
	for _, kk := range kinds {
		counts[kk]++
	}
	if counts[trace.KindAlloc] != 1 || counts[trace.KindFree] != 1 {
		t.Errorf("alloc/free counts = %d/%d, want 1/1 (%v)", counts[trace.KindAlloc], counts[trace.KindFree], kinds)
	}
	// Store, Load, Add(Load+Store) = 2 writes + 2 reads.
	if counts[trace.KindWrite] != 2 || counts[trace.KindRead] != 2 {
		t.Errorf("write/read counts = %d/%d, want 2/2", counts[trace.KindWrite], counts[trace.KindRead])
	}
	if counts[trace.KindDefStack] != 1 {
		t.Errorf("stack defs = %d, want 1 (stacks must be interned)", counts[trace.KindDefStack])
	}

	// The write address must equal alloc addr + member offset.
	var allocAddr uint64
	for _, ev := range evs {
		if ev.Kind == trace.KindAlloc {
			allocAddr = ev.Addr
			if ev.Subclass != "sub" {
				t.Errorf("subclass = %q, want sub", ev.Subclass)
			}
		}
		if ev.Kind == trace.KindWrite && ev.AccessSize == 8 {
			if ev.Addr != allocAddr {
				t.Errorf("write addr = %#x, want %#x", ev.Addr, allocAddr)
			}
			if ev.FuncID != fn.ID {
				t.Errorf("write func = %d, want %d", ev.FuncID, fn.ID)
			}
		}
	}
}

func TestUseAfterFreePanics(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	ti := k.Register(NewType("w").Field("x", 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected use-after-free panic")
		}
	}()
	k.Go("worker", func(c *Context) {
		o := k.Alloc(c, ti, "")
		k.Free(c, o)
		o.Load(c, 0)
	})
	k.Sched.Run()
}

func TestDoubleFreePanics(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	ti := k.Register(NewType("w").Field("x", 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected double-free panic")
		}
	}()
	k.Go("worker", func(c *Context) {
		o := k.Alloc(c, ti, "")
		k.Free(c, o)
		k.Free(c, o)
	})
	k.Sched.Run()
}

func TestAddressRecycling(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	ti := k.Register(NewType("w").Field("x", 8))
	var first, second uint64
	k.Go("worker", func(c *Context) {
		o1 := k.Alloc(c, ti, "")
		first = o1.Addr
		k.Free(c, o1)
		o2 := k.Alloc(c, ti, "")
		second = o2.Addr
		k.Free(c, o2)
	})
	k.Sched.Run()
	if first != second {
		t.Errorf("address not recycled: %#x then %#x", first, second)
	}
	if k.LiveAllocations() != 0 {
		t.Errorf("%d live allocations leaked", k.LiveAllocations())
	}
}

func TestDistinctTypesDistinctAddresses(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	a := k.Register(NewType("a").Field("x", 8))
	b := k.Register(NewType("b").Field("y", 8))
	k.Go("worker", func(c *Context) {
		oa := k.Alloc(c, a, "")
		ob := k.Alloc(c, b, "")
		if oa.Addr == ob.Addr {
			t.Error("two live objects share an address")
		}
		// Freed address of type a must not be reused for type b.
		k.Free(c, oa)
		ob2 := k.Alloc(c, b, "")
		if ob2.Addr == oa.Addr {
			t.Error("freed address of a reused for b (slab caches are per-type)")
		}
	})
	k.Sched.Run()
}

func TestUnbalancedExitPanics(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	f1 := k.Func("a.c", 1, "f1", 10)
	f2 := k.Func("a.c", 20, "f2", 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected unbalanced-exit panic")
		}
	}()
	k.Go("worker", func(c *Context) {
		c.Enter(f1)
		c.Exit(f2)
	})
	k.Sched.Run()
}

func TestStackInterning(t *testing.T) {
	k, buf := newTestKernel(t, 1)
	ti := k.Register(NewType("w").Field("x", 8))
	f1 := k.Func("a.c", 1, "outer", 10)
	f2 := k.Func("a.c", 20, "inner", 10)
	k.Go("worker", func(c *Context) {
		o := k.Alloc(c, ti, "")
		defer c.Exit(c.Enter(f1))
		o.Store(c, 0, 1) // stack [outer]
		func() {
			defer c.Exit(c.Enter(f2))
			o.Store(c, 0, 2) // stack [outer inner]
		}()
		o.Store(c, 0, 3) // stack [outer] again — same interned ID
		k.Free(c, o)
	})
	k.Sched.Run()
	evs := readTrace(t, k, buf)
	var stackDefs int
	var writeStacks []uint32
	for _, ev := range evs {
		switch ev.Kind {
		case trace.KindDefStack:
			stackDefs++
		case trace.KindWrite:
			writeStacks = append(writeStacks, ev.StackID)
		}
	}
	if stackDefs != 2 {
		t.Errorf("stack defs = %d, want 2", stackDefs)
	}
	if len(writeStacks) != 3 || writeStacks[0] != writeStacks[2] || writeStacks[0] == writeStacks[1] {
		t.Errorf("write stacks = %v, want [s1 s2 s1]", writeStacks)
	}
}

func TestCoverageAccounting(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	hot := k.Func("fs/inode.c", 10, "hot", 10)
	k.Func("fs/inode.c", 40, "cold", 30)
	k.Func("fs/ext4/super.c", 5, "other", 20)
	k.Go("worker", func(c *Context) {
		defer c.Exit(c.Enter(hot))
		c.Cover(1)
		c.Cover(2)
		c.Cover(2) // idempotent
	})
	k.Sched.Run()
	cov := k.Coverage()
	byDir := map[string]CoverageLine{}
	for _, cl := range cov {
		byDir[cl.Dir] = cl
	}
	fs := byDir["fs"]
	if fs.FuncsTotal != 2 || fs.FuncsCovered != 1 {
		t.Errorf("fs func coverage = %d/%d, want 1/2", fs.FuncsCovered, fs.FuncsTotal)
	}
	if fs.LinesTotal != 40 || fs.LinesCovered != 3 { // enter covers line 0, plus offs 1,2
		t.Errorf("fs line coverage = %d/%d, want 3/40", fs.LinesCovered, fs.LinesTotal)
	}
	ext4 := byDir["fs/ext4"]
	if ext4.FuncsCovered != 0 || ext4.LinesCovered != 0 {
		t.Errorf("ext4 coverage should be zero, got %+v", ext4)
	}
	if fs.LinePct() < 7.4 || fs.LinePct() > 7.6 {
		t.Errorf("LinePct = %f, want 7.5", fs.LinePct())
	}
	if fs.FuncPct() != 50 {
		t.Errorf("FuncPct = %f, want 50", fs.FuncPct())
	}
}

func TestFuncRegistrationIdempotent(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	f1 := k.Func("a.c", 1, "f", 10)
	f2 := k.Func("a.c", 1, "f", 10)
	if f1 != f2 {
		t.Error("same function registered twice")
	}
	if len(k.Funcs()) != 1 {
		t.Errorf("Funcs() has %d entries, want 1", len(k.Funcs()))
	}
}

func TestDirOfFunc(t *testing.T) {
	cases := map[string]string{
		"fs/ext4/inode.c": "fs/ext4",
		"fs/inode.c":      "fs",
		"main.c":          ".",
	}
	for file, want := range cases {
		f := &FuncInfo{File: file}
		if got := f.Dir(); got != want {
			t.Errorf("Dir(%q) = %q, want %q", file, got, want)
		}
	}
}

func TestMemberIndexUnknownPanics(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	ti := k.Register(NewType("w").Field("x", 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown member")
		}
	}()
	ti.MemberIndex("nope")
}

// Property: for any sequence of stores, a Load returns the last stored
// value (the object is a faithful memory cell per member).
func TestObjectMemoryCellProperty(t *testing.T) {
	prop := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		k, _ := newTestKernel(t, 3)
		ti := k.Register(NewType("cell").Field("v", 8))
		ok := true
		k.Go("w", func(c *Context) {
			o := k.Alloc(c, ti, "")
			for _, v := range vals {
				o.Store(c, 0, v)
			}
			ok = o.Load(c, 0) == vals[len(vals)-1]
			k.Free(c, o)
		})
		k.Sched.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTraceIsDeterministicAcrossRuns(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		k := New(sched.New(77, 3), w)
		ti := k.Register(NewType("w").Field("x", 8).Field("y", 8))
		fn := k.Func("a.c", 1, "f", 10)
		for i := 0; i < 3; i++ {
			k.Go("worker", func(c *Context) {
				defer c.Exit(c.Enter(fn))
				o := k.Alloc(c, ti, "")
				for j := 0; j < 20; j++ {
					o.Add(c, 0, 1)
					o.Store(c, 1, uint64(j))
				}
				k.Free(c, o)
			})
		}
		k.Sched.Run()
		if err := k.Finish(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("identical seeds produced different traces")
	}
}

func TestContextKindAndIRQ(t *testing.T) {
	k, buf := newTestKernel(t, 9)
	ti := k.Register(NewType("w").Field("x", 8))
	var obj *Object
	fn := k.Func("irq.c", 1, "handler", 5)
	irqCtx := k.RegisterIRQ(trace.CtxHardIRQ, "timer-irq", 2, func(c *Context) {
		if obj != nil {
			defer c.Exit(c.Enter(fn))
			obj.Store(c, 0, 1)
		}
	})
	if irqCtx.Kind() != trace.CtxHardIRQ || irqCtx.Task() != nil {
		t.Error("irq context misconfigured")
	}
	k.Go("worker", func(c *Context) {
		obj = k.Alloc(c, ti, "")
		for i := 0; i < 50; i++ {
			c.Tick(1)
		}
		k.Free(c, obj)
		obj = nil
	})
	k.Sched.Run()
	evs := readTrace(t, k, buf)
	var irqWrites int
	for _, ev := range evs {
		if ev.Kind == trace.KindWrite && ev.Ctx == irqCtx.ID() {
			irqWrites++
		}
	}
	if irqWrites == 0 {
		t.Error("no writes attributed to irq context over 50 ticks at rate 1/2")
	}
}

func TestSnapshotHasNames(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	k.Go("alpha", func(c *Context) {})
	if !strings.Contains(k.Sched.Snapshot(), "alpha") {
		t.Error("snapshot missing task name")
	}
	k.Sched.Run()
}
