package kernel

import (
	"testing"

	"lockdoc/internal/sched"
)

func TestTypeByName(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	ti := k.Register(NewType("thing").Field("x", 8))
	got, ok := k.TypeByName("thing")
	if !ok || got != ti {
		t.Error("TypeByName failed for registered type")
	}
	if _, ok := k.TypeByName("absent"); ok {
		t.Error("TypeByName found a phantom type")
	}
	if len(k.Types()) != 1 {
		t.Errorf("Types() has %d entries", len(k.Types()))
	}
}

func TestStaticAddrAligned(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	a := k.StaticAddr(3)
	b := k.StaticAddr(8)
	if b <= a {
		t.Errorf("static addresses not increasing: %#x then %#x", a, b)
	}
	if b%8 != 0 || a%8 != 0 {
		t.Errorf("static addresses unaligned: %#x, %#x", a, b)
	}
}

func TestEventCountAdvances(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	before := k.EventCount()
	ti := k.Register(NewType("w").Field("x", 8))
	k.Go("t", func(c *Context) {
		o := k.Alloc(c, ti, "")
		o.Store(c, 0, 1)
		k.Free(c, o)
	})
	k.Sched.Run()
	if k.EventCount() <= before {
		t.Error("EventCount did not advance")
	}
}

func TestMemberAddrAndPeekPoke(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	ti := k.Register(NewType("w").Field("a", 8).Field("b", 8))
	k.Go("t", func(c *Context) {
		o := k.Alloc(c, ti, "")
		if o.MemberAddr(1) != o.Addr+8 {
			t.Errorf("MemberAddr(1) = %#x, base %#x", o.MemberAddr(1), o.Addr)
		}
		o.Poke(0, 42)
		if o.Peek(0) != 42 {
			t.Error("Peek after Poke failed")
		}
		// Peek/Poke must not emit events.
		before := k.EventCount()
		o.Poke(1, 7)
		_ = o.Peek(1)
		if k.EventCount() != before {
			t.Error("Peek/Poke emitted trace events")
		}
		k.Free(c, o)
	})
	k.Sched.Run()
}

func TestNilWriterKernel(t *testing.T) {
	// A kernel without a trace writer must still run (used by tools that
	// only need coverage or semantics).
	k := New(sched.New(1, 0), nil)
	ti := k.Register(NewType("w").Field("x", 8))
	k.Go("t", func(c *Context) {
		o := k.Alloc(c, ti, "")
		o.Store(c, 0, 1)
		k.Free(c, o)
	})
	k.Sched.Run()
	if err := k.Err(); err != nil {
		t.Fatal(err)
	}
	if err := k.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestCoveragePctZeroDivision(t *testing.T) {
	cl := CoverageLine{}
	if cl.LinePct() != 0 || cl.FuncPct() != 0 {
		t.Error("empty coverage line must report 0%")
	}
}

func TestMemTicksChargesTime(t *testing.T) {
	k, _ := newTestKernel(t, 1)
	k.MemTicks = 5
	ti := k.Register(NewType("w").Field("x", 8))
	k.Go("t", func(c *Context) {
		o := k.Alloc(c, ti, "")
		before := k.Sched.Now()
		o.Store(c, 0, 1)
		if k.Sched.Now()-before != 5 {
			t.Errorf("access charged %d ticks, want 5", k.Sched.Now()-before)
		}
		k.Free(c, o)
	})
	k.Sched.Run()
}
