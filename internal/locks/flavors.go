package locks

import (
	"fmt"

	"lockdoc/internal/kernel"
	"lockdoc/internal/trace"
)

// --- spinlock_t ---

// SpinLock models spinlock_t. Plain Lock disables preemption for the
// critical section (as spin_lock does on a preemptible kernel); the IRQ
// flavor additionally disables interrupt injection and records the
// synthetic hardirq pseudo-lock; the BH flavor records the softirq
// pseudo-lock.
type SpinLock struct{ b *base }

// Spin creates a global spinlock.
func (d *Domain) Spin(name string) *SpinLock {
	return &SpinLock{d.newBase(name, trace.LockSpin, 0, 0)}
}

// SpinIn creates a spinlock embedded in member `member` of owner.
func (d *Domain) SpinIn(owner *kernel.Object, member string) *SpinLock {
	return &SpinLock{d.embeddedBase(owner, member, trace.LockSpin)}
}

// SpinAt creates a bit spinlock living inside a plain data member of
// owner (the kernel's bit_spin_lock on buffer_head b_state, for
// example). Unlike SpinIn, the member need not be declared as a lock —
// the data bits remain observable.
func (d *Domain) SpinAt(owner *kernel.Object, member string) *SpinLock {
	mi := owner.Typ.MemberIndex(member)
	return &SpinLock{d.newBaseAt(member, trace.LockSpin, owner.MemberAddr(mi), owner.Addr)}
}

// Lock acquires the spinlock (spin_lock).
func (l *SpinLock) Lock(c *kernel.Context) {
	l.b.acquireExcl(c)
	if t := c.Task(); t != nil {
		t.NoPreempt++
	}
}

// Unlock releases the spinlock (spin_unlock).
func (l *SpinLock) Unlock(c *kernel.Context) {
	if t := c.Task(); t != nil {
		t.NoPreempt--
	}
	l.b.releaseExcl(c)
}

// LockIRQ acquires with interrupts disabled (spin_lock_irq).
func (l *SpinLock) LockIRQ(c *kernel.Context) {
	l.b.d.IRQDisable(c)
	l.Lock(c)
}

// UnlockIRQ releases and re-enables interrupts (spin_unlock_irq).
func (l *SpinLock) UnlockIRQ(c *kernel.Context) {
	l.Unlock(c)
	l.b.d.IRQEnable(c)
}

// LockBH acquires with bottom halves disabled (spin_lock_bh).
func (l *SpinLock) LockBH(c *kernel.Context) {
	l.b.d.BHDisable(c)
	l.Lock(c)
}

// UnlockBH releases and re-enables bottom halves (spin_unlock_bh).
func (l *SpinLock) UnlockBH(c *kernel.Context) {
	l.Unlock(c)
	l.b.d.BHEnable(c)
}

// TryLock attempts the acquisition without blocking and reports success.
func (l *SpinLock) TryLock(c *kernel.Context) bool {
	if l.b.writer != nil || l.b.readers > 0 {
		return false
	}
	l.Lock(c)
	return true
}

// Held reports whether c holds the lock (assertion helper).
func (l *SpinLock) Held(c *kernel.Context) bool { return l.b.heldBy(c) }

// Name returns the lock's diagnostic name.
func (l *SpinLock) Name() string { return l.b.name }

// --- mutex ---

// Mutex models the kernel mutex (sleeping, exclusive).
type Mutex struct{ b *base }

// Mutex creates a global mutex.
func (d *Domain) Mutex(name string) *Mutex {
	return &Mutex{d.newBase(name, trace.LockMutex, 0, 0)}
}

// MutexIn creates a mutex embedded in member `member` of owner.
func (d *Domain) MutexIn(owner *kernel.Object, member string) *Mutex {
	return &Mutex{d.embeddedBase(owner, member, trace.LockMutex)}
}

// Lock acquires the mutex, sleeping if contended (mutex_lock).
func (l *Mutex) Lock(c *kernel.Context) { l.b.acquireExcl(c) }

// Unlock releases the mutex (mutex_unlock).
func (l *Mutex) Unlock(c *kernel.Context) { l.b.releaseExcl(c) }

// Held reports whether c holds the mutex.
func (l *Mutex) Held(c *kernel.Context) bool { return l.b.heldBy(c) }

// Name returns the lock's diagnostic name.
func (l *Mutex) Name() string { return l.b.name }

// --- rwlock_t ---

// RWLock models rwlock_t (spinning reader/writer lock).
type RWLock struct{ b *base }

// RW creates a global rwlock.
func (d *Domain) RW(name string) *RWLock {
	return &RWLock{d.newBase(name, trace.LockRW, 0, 0)}
}

// RWIn creates an rwlock embedded in member `member` of owner.
func (d *Domain) RWIn(owner *kernel.Object, member string) *RWLock {
	return &RWLock{d.embeddedBase(owner, member, trace.LockRW)}
}

// ReadLock acquires the shared side (read_lock).
func (l *RWLock) ReadLock(c *kernel.Context) {
	l.b.acquireShared(c)
	if t := c.Task(); t != nil {
		t.NoPreempt++
	}
}

// ReadUnlock releases the shared side (read_unlock).
func (l *RWLock) ReadUnlock(c *kernel.Context) {
	if t := c.Task(); t != nil {
		t.NoPreempt--
	}
	l.b.releaseShared(c)
}

// WriteLock acquires the exclusive side (write_lock). It waits for all
// readers to drain.
func (l *RWLock) WriteLock(c *kernel.Context) {
	for l.b.readers > 0 {
		t := c.Task()
		if t == nil {
			panic("locks: interrupt context blocks on rwlock writer side of " + l.b.name)
		}
		t.Block(l.b.waitq)
	}
	l.b.acquireExcl(c)
	if t := c.Task(); t != nil {
		t.NoPreempt++
	}
}

// WriteUnlock releases the exclusive side (write_unlock).
func (l *RWLock) WriteUnlock(c *kernel.Context) {
	if t := c.Task(); t != nil {
		t.NoPreempt--
	}
	l.b.releaseExcl(c)
}

// Held reports whether c holds the lock in any mode.
func (l *RWLock) Held(c *kernel.Context) bool { return l.b.heldBy(c) }

// Name returns the lock's diagnostic name.
func (l *RWLock) Name() string { return l.b.name }

// --- semaphore ---

// Semaphore models the counting semaphore (down/up).
type Semaphore struct {
	b     *base
	count int
}

// Sem creates a global semaphore with the given initial count.
func (d *Domain) Sem(name string, count int) *Semaphore {
	return &Semaphore{b: d.newBase(name, trace.LockSem, 0, 0), count: count}
}

// SemIn creates a semaphore embedded in member `member` of owner.
func (d *Domain) SemIn(owner *kernel.Object, member string, count int) *Semaphore {
	return &Semaphore{b: d.embeddedBase(owner, member, trace.LockSem), count: count}
}

// Down decrements the semaphore, sleeping while it is zero.
func (l *Semaphore) Down(c *kernel.Context) {
	for l.count == 0 {
		t := c.Task()
		if t == nil {
			panic("locks: interrupt context blocks on semaphore " + l.b.name)
		}
		t.Block(l.b.waitq)
	}
	l.count--
	l.b.emit(c, trace.KindAcquire, false)
	l.b.pushHeld(c)
}

// Up increments the semaphore and wakes a waiter.
func (l *Semaphore) Up(c *kernel.Context) {
	l.count++
	l.b.emit(c, trace.KindRelease, false)
	l.b.popHeld(c)
	l.b.d.k.Sched.WakeOne(l.b.waitq)
}

// Name returns the lock's diagnostic name.
func (l *Semaphore) Name() string { return l.b.name }

// --- rw_semaphore ---

// RWSem models rw_semaphore (sleeping reader/writer semaphore), the
// primitive behind i_rwsem and s_umount.
type RWSem struct{ b *base }

// RWSem creates a global rw_semaphore.
func (d *Domain) RWSem(name string) *RWSem {
	return &RWSem{d.newBase(name, trace.LockRWSem, 0, 0)}
}

// RWSemIn creates an rw_semaphore embedded in member `member` of owner.
func (d *Domain) RWSemIn(owner *kernel.Object, member string) *RWSem {
	return &RWSem{d.embeddedBase(owner, member, trace.LockRWSem)}
}

// DownRead acquires the shared side (down_read).
func (l *RWSem) DownRead(c *kernel.Context) { l.b.acquireShared(c) }

// UpRead releases the shared side (up_read).
func (l *RWSem) UpRead(c *kernel.Context) { l.b.releaseShared(c) }

// DownWrite acquires the exclusive side (down_write).
func (l *RWSem) DownWrite(c *kernel.Context) {
	for l.b.readers > 0 {
		t := c.Task()
		if t == nil {
			panic("locks: interrupt context blocks on rwsem " + l.b.name)
		}
		t.Block(l.b.waitq)
	}
	l.b.acquireExcl(c)
}

// UpWrite releases the exclusive side (up_write).
func (l *RWSem) UpWrite(c *kernel.Context) { l.b.releaseExcl(c) }

// Held reports whether c holds the rwsem in any mode.
func (l *RWSem) Held(c *kernel.Context) bool { return l.b.heldBy(c) }

// Name returns the lock's diagnostic name.
func (l *RWSem) Name() string { return l.b.name }

// --- seqlock_t ---

// SeqLock models seqlock_t: writers take an internal spinlock and bump a
// sequence counter; readers run optimistically and retry on a torn
// sequence. The read section is traced as a shared acquisition so the
// mining pipeline sees the protection.
type SeqLock struct {
	b   *base
	seq uint64
}

// Seq creates a global seqlock.
func (d *Domain) Seq(name string) *SeqLock {
	return &SeqLock{b: d.newBase(name, trace.LockSeq, 0, 0)}
}

// SeqIn creates a seqlock embedded in member `member` of owner.
func (d *Domain) SeqIn(owner *kernel.Object, member string) *SeqLock {
	return &SeqLock{b: d.embeddedBase(owner, member, trace.LockSeq)}
}

// WriteLock enters the write side (write_seqlock).
func (l *SeqLock) WriteLock(c *kernel.Context) {
	l.b.acquireExcl(c)
	l.seq++
	if t := c.Task(); t != nil {
		t.NoPreempt++
	}
}

// WriteUnlock leaves the write side (write_sequnlock).
func (l *SeqLock) WriteUnlock(c *kernel.Context) {
	l.seq++
	if t := c.Task(); t != nil {
		t.NoPreempt--
	}
	l.b.releaseExcl(c)
}

// ReadBegin opens an optimistic read section (read_seqbegin) and returns
// the sequence cookie for ReadRetry.
func (l *SeqLock) ReadBegin(c *kernel.Context) uint64 {
	for l.seq%2 == 1 { // writer active
		t := c.Task()
		if t == nil {
			panic("locks: interrupt context spins on seqlock " + l.b.name)
		}
		t.Block(l.b.waitq)
	}
	l.b.readers++
	l.b.emit(c, trace.KindAcquire, true)
	l.b.pushHeld(c)
	return l.seq
}

// ReadRetry closes the read section and reports whether it must be
// retried because a writer interleaved (read_seqretry).
func (l *SeqLock) ReadRetry(c *kernel.Context, cookie uint64) bool {
	l.b.readers--
	l.b.emit(c, trace.KindRelease, true)
	l.b.popHeld(c)
	if l.b.readers == 0 {
		l.b.d.k.Sched.WakeAll(l.b.waitq)
	}
	return l.seq != cookie
}

// Name returns the lock's diagnostic name.
func (l *SeqLock) Name() string { return l.b.name }

// --- RCU ---

// RCUReadLock enters an RCU read-side critical section.
func (d *Domain) RCUReadLock(c *kernel.Context) {
	d.rcuReaders++
	d.rcu.emit(c, trace.KindAcquire, true)
	d.rcu.pushHeld(c)
}

// RCUReadUnlock leaves the RCU read-side critical section.
func (d *Domain) RCUReadUnlock(c *kernel.Context) {
	if d.rcuReaders <= 0 {
		panic("locks: rcu_read_unlock without matching rcu_read_lock")
	}
	d.rcuReaders--
	d.rcu.emit(c, trace.KindRelease, true)
	d.rcu.popHeld(c)
	if d.rcuReaders == 0 {
		d.k.Sched.WakeAll(d.rcuWaitq)
	}
}

// SynchronizeRCU blocks until every RCU read-side section that was
// active at the call has finished (coarse emulation: waits for the
// global reader count to reach zero).
func (d *Domain) SynchronizeRCU(c *kernel.Context) {
	for d.rcuReaders > 0 {
		t := c.Task()
		if t == nil {
			panic("locks: synchronize_rcu from interrupt context")
		}
		t.Block(d.rcuWaitq)
	}
}

// --- interrupt-state pseudo-locks ---

// IRQDisable models local_irq_disable: no interrupts are injected until
// the matching IRQEnable; the synthetic hardirq lock is recorded held.
func (d *Domain) IRQDisable(c *kernel.Context) {
	if t := c.Task(); t != nil {
		t.IRQOff++
	}
	d.hardirq.depth++
	if d.hardirq.depth == 1 {
		d.hardirq.emit(c, trace.KindAcquire, false)
		d.hardirq.pushHeld(c)
	}
}

// IRQEnable models local_irq_enable.
func (d *Domain) IRQEnable(c *kernel.Context) {
	if d.hardirq.depth <= 0 {
		panic("locks: irq enable without disable")
	}
	d.hardirq.depth--
	if d.hardirq.depth == 0 {
		d.hardirq.emit(c, trace.KindRelease, false)
		d.hardirq.popHeld(c)
	}
	if t := c.Task(); t != nil {
		t.IRQOff--
	}
}

// BHDisable models local_bh_disable: the synthetic softirq lock is
// recorded held (softirq injection is suppressed via preemption state).
func (d *Domain) BHDisable(c *kernel.Context) {
	if t := c.Task(); t != nil {
		t.IRQOff++ // bottom halves are delivered via the irq machinery
	}
	d.softirq.depth++
	if d.softirq.depth == 1 {
		d.softirq.emit(c, trace.KindAcquire, false)
		d.softirq.pushHeld(c)
	}
}

// BHEnable models local_bh_enable.
func (d *Domain) BHEnable(c *kernel.Context) {
	if d.softirq.depth <= 0 {
		panic("locks: bh enable without disable")
	}
	d.softirq.depth--
	if d.softirq.depth == 0 {
		d.softirq.emit(c, trace.KindRelease, false)
		d.softirq.popHeld(c)
	}
	if t := c.Task(); t != nil {
		t.IRQOff--
	}
}

// EnterIRQ marks entry into an interrupt handler context: the matching
// synthetic pseudo-lock is recorded held for the handler's duration.
// Handlers call the returned function on exit.
func (d *Domain) EnterIRQ(c *kernel.Context) func() {
	var pl *base
	switch c.Kind() {
	case trace.CtxSoftIRQ:
		pl = d.softirq
	case trace.CtxHardIRQ:
		pl = d.hardirq
	default:
		panic(fmt.Sprintf("locks: EnterIRQ from non-interrupt context %d", c.ID()))
	}
	pl.emit(c, trace.KindAcquire, false)
	pl.pushHeld(c)
	return func() {
		pl.emit(c, trace.KindRelease, false)
		pl.popHeld(c)
	}
}
