package locks

import (
	"bytes"
	"strings"
	"testing"

	"lockdoc/internal/kernel"
	"lockdoc/internal/sched"
	"lockdoc/internal/trace"
)

type fixture struct {
	k   *kernel.Kernel
	d   *Domain
	buf *bytes.Buffer
}

func newFixture(t *testing.T, seed int64, preempt int) *fixture {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(sched.New(seed, preempt), w)
	return &fixture{k: k, d: NewDomain(k), buf: &buf}
}

func (f *fixture) events(t *testing.T) []trace.Event {
	t.Helper()
	if err := f.k.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(f.buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	evs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestMutexMutualExclusion(t *testing.T) {
	f := newFixture(t, 1, 2)
	mu := f.d.Mutex("test_mutex")
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		f.k.Go("worker", func(c *kernel.Context) {
			for j := 0; j < 25; j++ {
				mu.Lock(c)
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				c.Tick(3) // invite preemption inside the critical section
				inside--
				mu.Unlock(c)
				c.Tick(1)
			}
		})
	}
	f.k.Sched.Run()
	if maxInside != 1 {
		t.Errorf("critical section had %d concurrent holders", maxInside)
	}
}

func TestMutexBlocksAndWakes(t *testing.T) {
	f := newFixture(t, 5, 0)
	mu := f.d.Mutex("m")
	var order []string
	f.k.Go("holder", func(c *kernel.Context) {
		mu.Lock(c)
		order = append(order, "hold")
		for i := 0; i < 10; i++ {
			c.Task().Yield() // give contender a chance to block
		}
		mu.Unlock(c)
		order = append(order, "released")
	})
	f.k.Go("contender", func(c *kernel.Context) {
		c.Task().Yield()
		mu.Lock(c)
		order = append(order, "acquired")
		mu.Unlock(c)
	})
	f.k.Sched.Run()
	joined := strings.Join(order, ",")
	if !strings.Contains(joined, "released") || !strings.HasSuffix(joined, "acquired") {
		t.Errorf("order = %q; contender must acquire only after release", joined)
	}
}

func TestSelfDeadlockPanics(t *testing.T) {
	f := newFixture(t, 1, 0)
	mu := f.d.Mutex("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected self-deadlock panic")
		}
	}()
	f.k.Go("w", func(c *kernel.Context) {
		mu.Lock(c)
		mu.Lock(c)
	})
	f.k.Sched.Run()
}

func TestUnlockWithoutLockPanics(t *testing.T) {
	f := newFixture(t, 1, 0)
	mu := f.d.Mutex("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.k.Go("w", func(c *kernel.Context) { mu.Unlock(c) })
	f.k.Sched.Run()
}

func TestSpinLockDisablesPreemption(t *testing.T) {
	f := newFixture(t, 3, 1) // preempt every tick when allowed
	sl := f.d.Spin("s")
	var trail strings.Builder
	f.k.Go("a", func(c *kernel.Context) {
		sl.Lock(c)
		for i := 0; i < 10; i++ {
			trail.WriteString("a")
			c.Tick(1)
		}
		sl.Unlock(c)
	})
	f.k.Go("b", func(c *kernel.Context) {
		for i := 0; i < 10; i++ {
			trail.WriteString("b")
			c.Tick(1)
		}
	})
	f.k.Sched.Run()
	if !strings.Contains(trail.String(), strings.Repeat("a", 10)) {
		t.Errorf("spinlock section was preempted: %q", trail.String())
	}
}

func TestRWLockReadersShareWritersExclude(t *testing.T) {
	f := newFixture(t, 7, 2)
	rw := f.d.RW("rw")
	readers := 0
	maxReaders := 0
	writerIn := false
	for i := 0; i < 3; i++ {
		f.k.Go("reader", func(c *kernel.Context) {
			for j := 0; j < 10; j++ {
				rw.ReadLock(c)
				readers++
				if readers > maxReaders {
					maxReaders = readers
				}
				if writerIn {
					t.Error("reader overlapped writer")
				}
				c.Tick(2)
				readers--
				rw.ReadUnlock(c)
				c.Tick(1)
				c.Task().Yield()
			}
		})
	}
	f.k.Go("writer", func(c *kernel.Context) {
		for j := 0; j < 10; j++ {
			rw.WriteLock(c)
			writerIn = true
			if readers != 0 {
				t.Error("writer overlapped readers")
			}
			c.Tick(2)
			writerIn = false
			rw.WriteUnlock(c)
			c.Tick(1)
			c.Task().Yield()
		}
	})
	f.k.Sched.Run()
	if maxReaders < 2 {
		t.Logf("note: readers never overlapped (maxReaders=%d); schedule-dependent", maxReaders)
	}
}

func TestRWSemReadWrite(t *testing.T) {
	f := newFixture(t, 11, 2)
	rs := f.d.RWSem("i_rwsem")
	shared := 0
	f.k.Go("r1", func(c *kernel.Context) {
		rs.DownRead(c)
		_ = shared
		c.Tick(5)
		rs.UpRead(c)
	})
	f.k.Go("w1", func(c *kernel.Context) {
		rs.DownWrite(c)
		shared++
		c.Tick(5)
		rs.UpWrite(c)
	})
	f.k.Sched.Run()
	if shared != 1 {
		t.Errorf("shared = %d, want 1", shared)
	}
}

func TestSemaphoreCounts(t *testing.T) {
	f := newFixture(t, 2, 0)
	sem := f.d.Sem("sem", 2)
	inside, maxInside := 0, 0
	for i := 0; i < 4; i++ {
		f.k.Go("w", func(c *kernel.Context) {
			sem.Down(c)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			c.Task().Yield()
			inside--
			sem.Up(c)
		})
	}
	f.k.Sched.Run()
	if maxInside > 2 {
		t.Errorf("semaphore admitted %d holders, limit 2", maxInside)
	}
}

func TestSeqLockRetryOnWriter(t *testing.T) {
	f := newFixture(t, 1, 0)
	sq := f.d.Seq("jiffies_lock")
	value := 0
	var reads []int
	retried := false
	f.k.Go("writer", func(c *kernel.Context) {
		for i := 0; i < 5; i++ {
			sq.WriteLock(c)
			value++
			c.Tick(1)
			sq.WriteUnlock(c)
			c.Task().Yield()
		}
	})
	f.k.Go("reader", func(c *kernel.Context) {
		for i := 0; i < 5; i++ {
			for {
				cookie := sq.ReadBegin(c)
				v := value
				c.Task().Yield() // invite interleaving
				if !sq.ReadRetry(c, cookie) {
					reads = append(reads, v)
					break
				}
				retried = true
			}
		}
	})
	f.k.Sched.Run()
	if len(reads) != 5 {
		t.Errorf("reader completed %d reads, want 5", len(reads))
	}
	_ = retried // retry is schedule-dependent; correctness is completing all reads
}

func TestRCUReadersAndSynchronize(t *testing.T) {
	f := newFixture(t, 4, 0)
	var done bool
	f.k.Go("reader", func(c *kernel.Context) {
		f.d.RCUReadLock(c)
		for i := 0; i < 5; i++ {
			c.Task().Yield()
		}
		f.d.RCUReadUnlock(c)
	})
	f.k.Go("updater", func(c *kernel.Context) {
		c.Task().Yield()
		f.d.SynchronizeRCU(c)
		done = true
	})
	f.k.Sched.Run()
	if !done {
		t.Error("synchronize_rcu never completed")
	}
}

func TestIRQDisableNesting(t *testing.T) {
	f := newFixture(t, 6, 0)
	fired := 0
	f.k.RegisterIRQ(trace.CtxHardIRQ, "irq", 1, func(c *kernel.Context) { fired++ })
	f.k.Go("w", func(c *kernel.Context) {
		f.d.IRQDisable(c)
		f.d.IRQDisable(c)
		for i := 0; i < 20; i++ {
			c.Tick(1)
		}
		f.d.IRQEnable(c)
		for i := 0; i < 20; i++ {
			c.Tick(1)
		}
		f.d.IRQEnable(c)
	})
	f.k.Sched.Run()
	if fired != 0 {
		t.Errorf("irq fired %d times while nested-disabled", fired)
	}
}

func TestSpinLockIRQEmitsPseudoLock(t *testing.T) {
	f := newFixture(t, 1, 0)
	sl := f.d.Spin("s")
	f.k.Go("w", func(c *kernel.Context) {
		sl.LockIRQ(c)
		sl.UnlockIRQ(c)
	})
	f.k.Sched.Run()
	evs := f.events(t)
	// Expect acquire(hardirq), acquire(s), release(s), release(hardirq).
	var seq []string
	lockNames := map[uint64]string{}
	for _, ev := range evs {
		switch ev.Kind {
		case trace.KindDefLock:
			lockNames[ev.LockID] = ev.LockName
		case trace.KindAcquire:
			seq = append(seq, "+"+lockNames[ev.LockID])
		case trace.KindRelease:
			seq = append(seq, "-"+lockNames[ev.LockID])
		}
	}
	want := "+hardirq,+s,-s,-hardirq"
	if got := strings.Join(seq, ","); got != want {
		t.Errorf("lock op sequence = %q, want %q", got, want)
	}
}

func TestEmbeddedLockDefinition(t *testing.T) {
	f := newFixture(t, 1, 0)
	ti := f.k.Register(kernel.NewType("inode").
		Field("i_state", 8).
		Lock("i_lock", 4))
	f.k.Go("w", func(c *kernel.Context) {
		o := f.k.Alloc(c, ti, "ext4")
		sl := f.d.SpinIn(o, "i_lock")
		sl.Lock(c)
		sl.Unlock(c)
		f.k.Free(c, o)
	})
	f.k.Sched.Run()
	evs := f.events(t)
	found := false
	var objAddr uint64
	for _, ev := range evs {
		if ev.Kind == trace.KindAlloc {
			objAddr = ev.Addr
		}
	}
	for _, ev := range evs {
		if ev.Kind == trace.KindDefLock && ev.LockName == "i_lock" {
			found = true
			if ev.OwnerAddr != objAddr {
				t.Errorf("owner addr = %#x, want %#x", ev.OwnerAddr, objAddr)
			}
			if ev.LockAddr <= objAddr {
				t.Errorf("lock addr %#x not inside object at %#x", ev.LockAddr, objAddr)
			}
		}
	}
	if !found {
		t.Fatal("embedded lock definition not emitted")
	}
}

func TestEmbeddedNonLockMemberPanics(t *testing.T) {
	f := newFixture(t, 1, 0)
	ti := f.k.Register(kernel.NewType("x").Field("data", 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-lock member")
		}
	}()
	f.k.Go("w", func(c *kernel.Context) {
		o := f.k.Alloc(c, ti, "")
		f.d.SpinIn(o, "data")
	})
	f.k.Sched.Run()
}

func TestHeldTracking(t *testing.T) {
	f := newFixture(t, 1, 0)
	a := f.d.Mutex("a")
	b := f.d.Spin("b")
	f.k.Go("w", func(c *kernel.Context) {
		a.Lock(c)
		b.Lock(c)
		held := f.d.HeldLocks(c)
		if len(held) != 2 || held[0] != "a" || held[1] != "b" {
			t.Errorf("held = %v, want [a b]", held)
		}
		if !a.Held(c) || !b.Held(c) {
			t.Error("Held() returned false for held locks")
		}
		desc := f.d.DescribeHeld()
		if !strings.Contains(desc, "a -> b") {
			t.Errorf("DescribeHeld = %q, want mention of a -> b", desc)
		}
		b.Unlock(c)
		a.Unlock(c)
		if f.d.HeldCount(c) != 0 {
			t.Errorf("HeldCount = %d after release", f.d.HeldCount(c))
		}
	})
	f.k.Sched.Run()
}

func TestTryLock(t *testing.T) {
	f := newFixture(t, 1, 0)
	sl := f.d.Spin("s")
	f.k.Go("w", func(c *kernel.Context) {
		if !sl.TryLock(c) {
			t.Error("TryLock failed on free lock")
		}
		sl.Unlock(c)
	})
	f.k.Sched.Run()
}

func TestLockEventsCarryContextAndFunc(t *testing.T) {
	f := newFixture(t, 1, 0)
	mu := f.d.Mutex("m")
	fn := f.k.Func("fs/x.c", 100, "xop", 10)
	var ctxID uint32
	f.k.Go("w", func(c *kernel.Context) {
		ctxID = c.ID()
		defer c.Exit(c.Enter(fn))
		mu.Lock(c)
		mu.Unlock(c)
	})
	f.k.Sched.Run()
	evs := f.events(t)
	checked := false
	for _, ev := range evs {
		if ev.Kind == trace.KindAcquire {
			checked = true
			if ev.Ctx != ctxID {
				t.Errorf("acquire ctx = %d, want %d", ev.Ctx, ctxID)
			}
			if ev.FuncID != fn.ID {
				t.Errorf("acquire func = %d, want %d", ev.FuncID, fn.ID)
			}
		}
	}
	if !checked {
		t.Fatal("no acquire event found")
	}
}
