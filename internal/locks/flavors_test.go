package locks

import (
	"testing"

	"lockdoc/internal/kernel"
	"lockdoc/internal/trace"
)

func TestEmbeddedFlavorConstructors(t *testing.T) {
	f := newFixture(t, 1, 0)
	ti := f.k.Register(kernel.NewType("owner").
		Field("data", 8).
		Lock("sl", 4).
		Lock("mu", 8).
		Lock("rw", 8).
		Lock("sem", 8).
		Lock("rwsem", 8).
		Lock("seq", 8))
	f.k.Go("w", func(c *kernel.Context) {
		o := f.k.Alloc(c, ti, "")
		sl := f.d.SpinIn(o, "sl")
		mu := f.d.MutexIn(o, "mu")
		rw := f.d.RWIn(o, "rw")
		sem := f.d.SemIn(o, "sem", 1)
		rs := f.d.RWSemIn(o, "rwsem")
		sq := f.d.SeqIn(o, "seq")

		sl.Lock(c)
		sl.Unlock(c)
		mu.Lock(c)
		mu.Unlock(c)
		rw.ReadLock(c)
		rw.ReadUnlock(c)
		rw.WriteLock(c)
		rw.WriteUnlock(c)
		sem.Down(c)
		sem.Up(c)
		rs.DownRead(c)
		rs.UpRead(c)
		rs.DownWrite(c)
		rs.UpWrite(c)
		sq.WriteLock(c)
		sq.WriteUnlock(c)
		cookie := sq.ReadBegin(c)
		if sq.ReadRetry(c, cookie) {
			t.Error("uncontended seq read demanded a retry")
		}
		if sl.Name() != "sl" || mu.Name() != "mu" || rw.Name() != "rw" ||
			sem.Name() != "sem" || rs.Name() != "rwsem" || sq.Name() != "seq" {
			t.Error("lock names wrong")
		}
		f.k.Free(c, o)
	})
	f.k.Sched.Run()
	// Every embedded lock must have a definition event with the owner.
	evs := f.events(t)
	defs := 0
	for _, ev := range evs {
		if ev.Kind == trace.KindDefLock && ev.OwnerAddr != 0 {
			defs++
		}
	}
	if defs != 6 {
		t.Errorf("%d embedded lock definitions, want 6", defs)
	}
}

func TestSemaphoreBlocksAtZero(t *testing.T) {
	f := newFixture(t, 3, 0)
	sem := f.d.Sem("s", 1)
	var order []string
	f.k.Go("holder", func(c *kernel.Context) {
		sem.Down(c)
		for i := 0; i < 5; i++ {
			c.Task().Yield()
		}
		order = append(order, "up")
		sem.Up(c)
	})
	f.k.Go("waiter", func(c *kernel.Context) {
		c.Task().Yield()
		sem.Down(c)
		order = append(order, "acquired")
		sem.Up(c)
	})
	f.k.Sched.Run()
	if len(order) != 2 || order[0] != "up" || order[1] != "acquired" {
		t.Errorf("order = %v", order)
	}
}

func TestBHDisableSuppressesIRQ(t *testing.T) {
	f := newFixture(t, 5, 0)
	fired := 0
	f.k.RegisterIRQ(trace.CtxSoftIRQ, "net-rx", 1, func(c *kernel.Context) { fired++ })
	f.k.Go("w", func(c *kernel.Context) {
		f.d.BHDisable(c)
		for i := 0; i < 50; i++ {
			c.Tick(1)
		}
		f.d.BHEnable(c)
	})
	f.k.Sched.Run()
	if fired != 0 {
		t.Errorf("softirq fired %d times inside BH-disabled section", fired)
	}
}

func TestBHEnableWithoutDisablePanics(t *testing.T) {
	f := newFixture(t, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.k.Go("w", func(c *kernel.Context) { f.d.BHEnable(c) })
	f.k.Sched.Run()
}

func TestTryLockContended(t *testing.T) {
	f := newFixture(t, 2, 0)
	sl := f.d.Spin("s")
	got := true
	f.k.Go("holder", func(c *kernel.Context) {
		sl.Lock(c)
		for i := 0; i < 4; i++ {
			c.Task().Yield()
		}
		sl.Unlock(c)
	})
	f.k.Go("trier", func(c *kernel.Context) {
		c.Task().Yield()
		got = sl.TryLock(c)
		if got {
			sl.Unlock(c)
		}
	})
	f.k.Sched.Run()
	if got {
		t.Error("TryLock succeeded on a held lock")
	}
}

func TestRWSemWriterExcludesReaders(t *testing.T) {
	f := newFixture(t, 9, 3)
	rs := f.d.RWSem("rs")
	writerIn := false
	for i := 0; i < 3; i++ {
		f.k.Go("reader", func(c *kernel.Context) {
			for j := 0; j < 8; j++ {
				rs.DownRead(c)
				if writerIn {
					t.Error("reader overlapped writer")
				}
				c.Tick(2)
				rs.UpRead(c)
				c.Tick(1)
			}
		})
	}
	f.k.Go("writer", func(c *kernel.Context) {
		for j := 0; j < 8; j++ {
			rs.DownWrite(c)
			writerIn = true
			c.Tick(3)
			writerIn = false
			rs.UpWrite(c)
			c.Tick(1)
		}
	})
	f.k.Sched.Run()
}

func TestRCUUnlockWithoutLockPanics(t *testing.T) {
	f := newFixture(t, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.k.Go("w", func(c *kernel.Context) { f.d.RCUReadUnlock(c) })
	f.k.Sched.Run()
}

func TestSpinAtUsesDataMember(t *testing.T) {
	f := newFixture(t, 1, 0)
	ti := f.k.Register(kernel.NewType("buf").Field("b_state", 8))
	f.k.Go("w", func(c *kernel.Context) {
		o := f.k.Alloc(c, ti, "")
		bit := f.d.SpinAt(o, "b_state")
		bit.Lock(c)
		o.Store(c, 0, 1) // the data word remains accessible
		bit.Unlock(c)
		f.k.Free(c, o)
	})
	f.k.Sched.Run()
	evs := f.events(t)
	var defOK, writeOK bool
	for _, ev := range evs {
		if ev.Kind == trace.KindDefLock && ev.LockName == "b_state" && ev.OwnerAddr != 0 {
			defOK = true
		}
		if ev.Kind == trace.KindWrite {
			writeOK = true
		}
	}
	if !defOK || !writeOK {
		t.Errorf("bit lock def=%v dataWrite=%v", defOK, writeOK)
	}
}
