// Package locks implements the instrumented synchronization primitives
// of the simulated kernel: spinlocks (plain, _bh and _irq flavors),
// mutexes, reader/writer locks, counting semaphores, rw_semaphores,
// seqlocks, an RCU read side, and the synthetic softirq/hardirq
// pseudo-locks the paper records for interrupt synchronization.
//
// Every acquisition and release emits a trace event attributed to the
// acquiring execution context and the innermost simulated function, so
// that the offline pipeline can reconstruct per-context held-lock sets
// (the paper's transactions).
//
// Blocking semantics run on the deterministic scheduler: a contended
// blocking lock suspends the task on the lock's wait queue. A contended
// spinlock also suspends the task — on a single emulated CPU this models
// the other "CPU" making progress while ours spins, and keeps the
// scheduler live. Interrupt contexts cannot block; a contended lock in
// interrupt context panics, because by construction (irq-disabled
// acquisitions by tasks) it indicates a locking bug in the simulated
// kernel itself.
package locks

import (
	"fmt"
	"strings"

	"lockdoc/internal/kernel"
	"lockdoc/internal/sched"
	"lockdoc/internal/trace"
)

// Domain groups the locks of one simulated kernel and tracks, per
// execution context, which locks are currently held (for assertions and
// deadlock diagnostics). Exactly one Domain exists per kernel.Kernel.
type Domain struct {
	k    *kernel.Kernel
	held map[*kernel.Context][]*base

	// RCU state.
	rcu        *base
	rcuReaders int
	rcuWaitq   *sched.WaitQueue

	// Synthetic pseudo-locks.
	softirq *base
	hardirq *base
}

// NewDomain creates the lock domain for k and registers the synthetic
// softirq/hardirq pseudo-locks and the global RCU lock.
func NewDomain(k *kernel.Kernel) *Domain {
	d := &Domain{
		k:        k,
		held:     make(map[*kernel.Context][]*base),
		rcuWaitq: sched.NewWaitQueue("rcu-gp"),
	}
	d.rcu = d.newBase("rcu", trace.LockRCU, 0, 0)
	d.softirq = d.newBase("softirq", trace.LockSoftIRQBH, 0, 0)
	d.hardirq = d.newBase("hardirq", trace.LockHardIRQ, 0, 0)
	return d
}

// base carries the state shared by all lock flavors.
type base struct {
	d     *Domain
	id    uint64
	name  string
	class trace.LockClass

	// writer holds the exclusive owner context; readers counts shared
	// holders (rwlock/rwsem read side, RCU, seqlock read section).
	writer  *kernel.Context
	readers int
	// depth supports the recursive pseudo-locks (irq disable nesting).
	depth int

	waitq *sched.WaitQueue
}

func (d *Domain) newBase(name string, class trace.LockClass, lockAddr, ownerAddr uint64) *base {
	if lockAddr == 0 {
		lockAddr = d.k.StaticAddr(8)
	}
	return &base{
		d: d, id: d.k.DefineLock(name, class, lockAddr, ownerAddr),
		name: name, class: class,
		waitq: sched.NewWaitQueue(name),
	}
}

// embeddedBase builds a lock bound to a lock member of an object.
func (d *Domain) embeddedBase(owner *kernel.Object, member string, class trace.LockClass) *base {
	mi := owner.Typ.MemberIndex(member)
	if !owner.Typ.Members[mi].IsLock {
		panic(fmt.Sprintf("locks: member %s.%s is not declared as a lock", owner.Typ.Name, member))
	}
	return d.newBaseAt(member, class, owner.MemberAddr(mi), owner.Addr)
}

func (d *Domain) newBaseAt(name string, class trace.LockClass, lockAddr, ownerAddr uint64) *base {
	b := &base{
		d: d, id: d.k.DefineLock(name, class, lockAddr, ownerAddr),
		name: name, class: class,
		waitq: sched.NewWaitQueue(name),
	}
	return b
}

// emit writes the acquire/release event.
func (b *base) emit(c *kernel.Context, kind trace.Kind, reader bool) {
	var fnID uint32
	var line uint32
	if top := c.Top(); top != nil {
		fnID = top.ID
		line = top.Line
	}
	b.d.k.EmitLockOp(c, kind, b.id, reader, fnID, line)
}

func (b *base) pushHeld(c *kernel.Context) { b.d.held[c] = append(b.d.held[c], b) }

func (b *base) popHeld(c *kernel.Context) {
	hs := b.d.held[c]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i] == b {
			b.d.held[c] = append(hs[:i], hs[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("locks: context %d releases %q which it does not hold", c.ID(), b.name))
}

// heldBy reports whether c currently holds b (in any mode).
func (b *base) heldBy(c *kernel.Context) bool {
	for _, h := range b.d.held[c] {
		if h == b {
			return true
		}
	}
	return false
}

// acquireExcl implements exclusive acquisition with blocking.
func (b *base) acquireExcl(c *kernel.Context) {
	if b.writer == c {
		panic(fmt.Sprintf("locks: context %d self-deadlocks on %q", c.ID(), b.name))
	}
	for b.writer != nil || b.readers > 0 {
		t := c.Task()
		if t == nil {
			panic(fmt.Sprintf("locks: interrupt context %d blocks on contended %q held by another context",
				c.ID(), b.name))
		}
		t.Block(b.waitq)
	}
	b.writer = c
	b.emit(c, trace.KindAcquire, false)
	b.pushHeld(c)
}

func (b *base) releaseExcl(c *kernel.Context) {
	if b.writer != c {
		panic(fmt.Sprintf("locks: context %d releases %q without holding it", c.ID(), b.name))
	}
	b.writer = nil
	b.emit(c, trace.KindRelease, false)
	b.popHeld(c)
	b.d.k.Sched.WakeAll(b.waitq)
}

// acquireShared implements reader-side acquisition.
func (b *base) acquireShared(c *kernel.Context) {
	if b.writer == c {
		panic(fmt.Sprintf("locks: context %d takes read side of %q while write-holding it", c.ID(), b.name))
	}
	for b.writer != nil {
		t := c.Task()
		if t == nil {
			panic(fmt.Sprintf("locks: interrupt context %d blocks on read side of %q", c.ID(), b.name))
		}
		t.Block(b.waitq)
	}
	b.readers++
	b.emit(c, trace.KindAcquire, true)
	b.pushHeld(c)
}

func (b *base) releaseShared(c *kernel.Context) {
	if b.readers <= 0 {
		panic(fmt.Sprintf("locks: context %d read-releases %q with no readers", c.ID(), b.name))
	}
	b.readers--
	b.emit(c, trace.KindRelease, true)
	b.popHeld(c)
	if b.readers == 0 {
		b.d.k.Sched.WakeAll(b.waitq)
	}
}

// HeldLocks returns the names of locks held by c, in acquisition order.
func (d *Domain) HeldLocks(c *kernel.Context) []string {
	hs := d.held[c]
	out := make([]string, len(hs))
	for i, b := range hs {
		out[i] = b.name
	}
	return out
}

// HeldCount returns the number of locks held by c.
func (d *Domain) HeldCount(c *kernel.Context) int { return len(d.held[c]) }

// DescribeHeld renders all held locks of all contexts, used as the
// scheduler's deadlock diagnostic.
func (d *Domain) DescribeHeld() string {
	var sb strings.Builder
	for c, hs := range d.held {
		if len(hs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "ctx %d holds [", c.ID())
		for i, b := range hs {
			if i > 0 {
				sb.WriteString(" -> ")
			}
			sb.WriteString(b.name)
		}
		sb.WriteString("]; ")
	}
	return sb.String()
}
