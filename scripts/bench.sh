#!/bin/sh
# Regenerate the pinned benchmark files:
#
#   BENCH_derive.json    every Derive* benchmark (the engine comparison
#                        in internal/core plus the trace-level
#                        derivation benchmarks at the repo root)
#   BENCH_segstore.json  the Segstore* benchmarks (state compaction,
#                        and store reopen vs trace re-import)
#
# Each file stores the raw benchmark lines in benchstat-friendly form
# next to machine metadata.
#
# Usage: scripts/bench.sh [benchtime]   (default 2x; use e.g. 5s for
# steadier numbers on quiet machines)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-2x}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

ncpu="$(nproc)"
gomaxprocs="${GOMAXPROCS:-$ncpu}"

# The parallel-derivation numbers are the point of BENCH_derive.json;
# on a single-CPU box every workers>1 row is a lie (the sweep degrades
# to workers=1 and "speedup" is scheduler noise). Refuse to pin such
# numbers unless the caller explicitly owns the caveat.
if [ "$ncpu" -le 1 ] && [ -z "${LOCKDOC_BENCH_ALLOW_SINGLE_CPU:-}" ]; then
	echo "bench.sh: refusing to pin benchmark results on a ${ncpu}-CPU box:" >&2
	echo "bench.sh: parallel scaling cannot be measured here." >&2
	echo "bench.sh: set LOCKDOC_BENCH_ALLOW_SINGLE_CPU=1 to pin anyway" >&2
	echo "bench.sh: (the JSON records ncpu/gomaxprocs so readers can judge)." >&2
	exit 1
fi

# pin <out> <bench-regexp> <packages...>: run the benchmarks and write
# the JSON pin file.
pin() {
	out="$1"
	pattern="$2"
	shift 2

	go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" "$@" | tee "$tmp"

	{
		printf '{\n'
		printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
		printf '  "go": "%s",\n' "$(go env GOVERSION)"
		printf '  "benchtime": "%s",\n' "$benchtime"
		printf '  "goos": "%s",\n' "$(go env GOOS)"
		printf '  "goarch": "%s",\n' "$(go env GOARCH)"
		printf '  "ncpu": %s,\n' "$ncpu"
		printf '  "gomaxprocs": %s,\n' "$gomaxprocs"
		printf '  "benchmarks": [\n'
		# Keep the raw "BenchmarkX  N  ns/op ..." lines verbatim: feed
		# them to benchstat by extracting this array with e.g.
		#   jq -r '.benchmarks[]' BENCH_derive.json > new.txt
		awk '/^Benchmark/ {
			gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); gsub(/\t/, "\\t")
			if (n++) printf ",\n"
			printf "    \"%s\"", $0
		} END { printf "\n" }' "$tmp"
		printf '  ]\n'
		printf '}\n'
	} >"$out"

	echo "wrote $out"
}

pin BENCH_derive.json Derive . ./internal/core/
pin BENCH_segstore.json Segstore .
