#!/bin/sh
# Regenerate BENCH_derive.json: run every Derive* benchmark (the
# engine comparison in internal/core plus the trace-level derivation
# benchmarks at the repo root) and store the raw benchmark lines in
# benchstat-friendly form next to machine metadata.
#
# Usage: scripts/bench.sh [benchtime]   (default 2x; use e.g. 5s for
# steadier numbers on quiet machines)
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-2x}"
out=BENCH_derive.json
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench Derive -benchmem -benchtime "$benchtime" . ./internal/core/ | tee "$tmp"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "ncpu": %s,\n' "$(nproc)"
	printf '  "benchmarks": [\n'
	# Keep the raw "BenchmarkX  N  ns/op ..." lines verbatim: feed them
	# to benchstat by extracting this array with e.g.
	#   jq -r '.benchmarks[]' BENCH_derive.json > new.txt
	awk '/^Benchmark/ {
		gsub(/\\/, "\\\\"); gsub(/"/, "\\\""); gsub(/\t/, "\\t")
		if (n++) printf ",\n"
		printf "    \"%s\"", $0
	} END { printf "\n" }' "$tmp"
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "wrote $out"
