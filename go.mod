module lockdoc

go 1.22
