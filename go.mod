module lockdoc

go 1.23
